//! Chunked, stable-address arenas for instance storage.
//!
//! [`ChunkedArena`] replaces the flat `Vec` pools behind the instance
//! term arena and the fired-set tuple arena: storage grows in fixed-size
//! chunks, so (a) growth never reallocates or copies what is already
//! stored — addresses are stable for the arena's lifetime, and the
//! doubling-copy spikes of a flat `Vec` disappear — and (b) each chunk
//! can be file-backed (`mmap` on a pre-sized unlinked temp file) when
//! `NUCHASE_INSTANCE_SPILL_DIR` names a directory, letting an instance
//! grow past RAM with bounded resident set: the kernel pages cold chunks
//! out instead of the allocator OOMing.
//!
//! The arena hands out **global `u32` indexes**; a slice pushed with
//! [`ChunkedArena::push_slice`] never straddles a chunk boundary (the
//! arena pads to the next chunk instead), so a `(start, len)` pair always
//! denotes contiguous memory and reads stay a single pointer add. The
//! padding means global indexes are *allocation* positions, not element
//! counts — callers that iterate must walk their own `(start, len)`
//! records, never the raw index space.
//!
//! [`SpillArena`] builds growable posting lists on top: each list lives
//! in one region, doubles by relocating to a fresh region (append-only,
//! so old copies are simply abandoned — the arena is a high-water-mark
//! allocator, reclaimed wholesale via [`ChunkedArena::truncate_to`] or
//! drop), and graduates to a dedicated heap `Vec` once it outgrows a
//! chunk.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default chunk capacity in *elements* (a power of two). At the 8-byte
/// `Term` this is 512 KiB per chunk — big enough that per-chunk
/// bookkeeping (one pointer load per access) is noise, small enough that
/// file-backed chases page in working-set-sized pieces. Override with
/// `NUCHASE_CHUNK_LEN` (a power of two; malformed values warn to stderr
/// once and fall back to the default).
pub const DEFAULT_CHUNK_LEN: usize = 1 << 16;

/// Chunk capacity for arenas created while the spill tier is **off**:
/// 32 KiB at the 8-byte `Term`. The full [`DEFAULT_CHUNK_LEN`] puts a
/// ~768 KiB floor under every instance (one term-pool chunk + one
/// posting chunk, eagerly pad-filled), which is invisible for a single
/// chase but catastrophic for the serve regime — thousands of
/// concurrent tiny tenant sessions each paying the floor add up to
/// gigabytes of resident padding. Small chunks keep a tiny session at
/// tens of KiB; a big chase just allocates more of them (addressing
/// stays one shift+mask either way).
pub const SMALL_CHUNK_LEN: usize = 1 << 12;

/// Chunk length for a **new** arena: an explicit `NUCHASE_CHUNK_LEN`
/// always wins; otherwise arenas sized while the spill tier is
/// configured use the full default (file-backed chases want few, large
/// mappings), and everything else uses [`SMALL_CHUNK_LEN`]. Both
/// environment decisions are resolved **once**, at the first arena
/// creation — this sits on the Instance-construction path of the serve
/// regime (thousands of tiny tenant sessions per second), where
/// per-creation `env::var` calls would contend on the process-global
/// environment lock. In-process togglers use [`set_spill_chunking`]
/// instead of `set_var`. Chunk length never changes the contents or
/// order of what an arena stores, only its padding layout, so this
/// choice is invisible through the model API; clones keep their
/// source's chunk length (the layout **is** the index space, so a clone
/// must preserve it).
pub fn adaptive_chunk_len() -> usize {
    match explicit_chunk_len() {
        Some(n) => n,
        None if spill_chunking() => DEFAULT_CHUNK_LEN,
        None => SMALL_CHUNK_LEN,
    }
}

/// Programmatic override of the spill half of the sizing decision:
/// 0 = follow the (cached) environment, 1 = forced off, 2 = forced on.
static SPILL_CHUNKING: AtomicUsize = AtomicUsize::new(0);

/// Overrides the arena-sizing half of the spill knob in-process:
/// `Some(true)` sizes new arenas as if `NUCHASE_INSTANCE_SPILL_DIR`
/// were set at startup, `Some(false)` as if it were not, `None`
/// restores the cached environment decision. For harnesses (the huge
/// bench sweep) that engage the spill tier after the first arena
/// already froze the environment read — chunk *backing* still follows
/// the live environment per allocation, only sizing is cached.
pub fn set_spill_chunking(mode: Option<bool>) {
    let v = match mode {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    SPILL_CHUNKING.store(v, Ordering::Relaxed);
}

/// Is the spill tier on, for arena sizing? The environment is consulted
/// once, at the first query (i.e. the first arena creation).
fn spill_chunking() -> bool {
    match SPILL_CHUNKING.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| {
                std::env::var("NUCHASE_INSTANCE_SPILL_DIR").is_ok_and(|d| !d.is_empty())
            })
        }
    }
}

/// Chunk length resolved from `NUCHASE_CHUNK_LEN` (`None` when unset),
/// cached per process.
fn explicit_chunk_len() -> Option<usize> {
    static LEN: OnceLock<Option<usize>> = OnceLock::new();
    *LEN.get_or_init(|| match std::env::var("NUCHASE_CHUNK_LEN") {
        Ok(s) => Some(match s.trim().parse::<usize>() {
            Ok(n) if n.is_power_of_two() && n >= 64 => n,
            _ => {
                eprintln!(
                    "nuchase: ignoring malformed NUCHASE_CHUNK_LEN={s:?} \
                     (want a power of two >= 64); using {DEFAULT_CHUNK_LEN}"
                );
                DEFAULT_CHUNK_LEN
            }
        }),
        Err(_) => None,
    })
}

/// One fixed-size chunk: a raw allocation of `chunk_len` elements, either
/// heap memory or a shared file mapping. Raw pointers (rather than a
/// `Box`) keep the aliasing story simple: the arena is the sole owner and
/// all access is funneled through its `&self`/`&mut self` methods.
struct Chunk<T> {
    ptr: *mut T,
    /// Mapping length in bytes for file-backed chunks; `0` marks a heap
    /// chunk (whose layout is reconstructed from the arena's `chunk_len`).
    mmap_bytes: usize,
}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 1;
}

/// Bounded-retry policy for transient (`EINTR`/`EAGAIN`-class) spill
/// I/O errors: attempts beyond the first, from `NUCHASE_SPILL_RETRIES`
/// (default 3; read per mapping attempt — the spill path already reads
/// the environment per allocation, and it is far off the hot path).
fn spill_retries() -> u32 {
    std::env::var("NUCHASE_SPILL_RETRIES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(3)
}

/// Backoff between spill retries, in milliseconds per attempt index
/// (linear), from `NUCHASE_SPILL_BACKOFF_MS` (default 1).
fn spill_backoff_ms() -> u64 {
    std::env::var("NUCHASE_SPILL_BACKOFF_MS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

/// Is this I/O error worth a bounded retry rather than a fallback?
fn spill_error_is_transient(err: &std::io::Error) -> bool {
    matches!(
        err.kind(),
        std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock
    )
}

/// One attempt at creating, sizing, and mapping a spill file. Fault
/// sites: [`crate::fault::FaultSite::SpillTransient`] simulates an
/// `EINTR`-class error (absorbed by the caller's retry loop),
/// [`crate::fault::FaultSite::SpillMap`] a hard failure (caller falls
/// back to a heap chunk).
#[cfg(unix)]
fn try_map_spill_file(dir: &str, bytes: usize) -> std::io::Result<*mut u8> {
    use std::os::unix::io::AsRawFd;
    if crate::fault::trip(crate::fault::FaultSite::SpillTransient) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "injected transient spill failure",
        ));
    }
    if crate::fault::trip(crate::fault::FaultSite::SpillMap) {
        return Err(std::io::Error::other("injected spill mapping failure"));
    }
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let name = format!(
        "nuchase-arena-{}-{}.bin",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    );
    let path = std::path::Path::new(dir).join(name);
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)?;
    let mapped = (|| {
        file.set_len(bytes as u64)?;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                bytes,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(ptr as *mut u8)
        }
    })();
    let _ = std::fs::remove_file(&path);
    mapped
}

/// Maps a fresh pre-sized temp file in `dir`, unlinking it immediately so
/// the space is reclaimed on process exit no matter how we die. Transient
/// (`EINTR`/`EAGAIN`-class) errors are retried a bounded number of times
/// with linear backoff; anything else — or exhausting the retries —
/// returns `None` (caller falls back to a heap chunk).
#[cfg(unix)]
fn map_spill_file(dir: &str, bytes: usize) -> Option<*mut u8> {
    let retries = spill_retries();
    let mut attempt = 0u32;
    loop {
        match try_map_spill_file(dir, bytes) {
            Ok(ptr) => return Some(ptr),
            Err(e) if spill_error_is_transient(&e) && attempt < retries => {
                attempt += 1;
                crate::fault::note_retry();
                let backoff = spill_backoff_ms().saturating_mul(attempt as u64);
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
            }
            Err(_) => return None,
        }
    }
}

/// Warns once per process when a configured spill directory is unusable.
fn warn_spill_unusable(dir: &str) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        eprintln!(
            "nuchase: NUCHASE_INSTANCE_SPILL_DIR={dir:?} is not usable for \
             file-backed chunks; falling back to heap allocation"
        );
    });
}

/// A grow-only arena of fixed-size chunks addressed by global `u32`
/// index. See the module docs for the layout contract.
pub struct ChunkedArena<T: Copy> {
    chunks: Vec<Chunk<T>>,
    /// log2 of the chunk length.
    shift: u32,
    /// `chunk_len - 1`.
    mask: usize,
    /// High-water mark: the next free global index (counts padding).
    len: u32,
    /// Filler for boundary padding and fresh chunks.
    pad: T,
}

// The arena owns its chunks exclusively (heap allocations and private
// unlinked file mappings); the raw pointers are an implementation detail
// of that ownership, so threading the arena around is as safe as a `Vec`.
unsafe impl<T: Copy + Send> Send for ChunkedArena<T> {}
unsafe impl<T: Copy + Sync> Sync for ChunkedArena<T> {}

impl<T: Copy> ChunkedArena<T> {
    /// An empty arena with the [`adaptive_chunk_len`] for the current
    /// regime (small unless the spill tier is on or `NUCHASE_CHUNK_LEN`
    /// pins it). `pad` fills fresh chunks and boundary padding; it is
    /// never observable through correctly-ranged reads.
    pub fn new(pad: T) -> Self {
        Self::with_chunk_len(adaptive_chunk_len(), pad)
    }

    /// An empty arena with an explicit chunk length (a power of two;
    /// tests use small lengths to exercise boundary behavior).
    pub fn with_chunk_len(chunk_len: usize, pad: T) -> Self {
        assert!(
            chunk_len.is_power_of_two(),
            "chunk_len must be a power of two"
        );
        ChunkedArena {
            chunks: Vec::new(),
            shift: chunk_len.trailing_zeros(),
            mask: chunk_len - 1,
            len: 0,
            pad,
        }
    }

    /// The chunk capacity in elements.
    #[inline]
    pub fn chunk_len(&self) -> usize {
        self.mask + 1
    }

    /// The high-water mark: the next global index to be allocated.
    /// Counts boundary padding, so this is an upper bound on (not a count
    /// of) stored elements.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Has nothing been allocated?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocates one chunk, file-backed when `NUCHASE_INSTANCE_SPILL_DIR`
    /// is set and usable (checked per allocation, so the knob can be
    /// toggled mid-process). Fresh chunks are filled with `pad`.
    fn new_chunk(&self) -> Chunk<T> {
        let chunk_len = self.chunk_len();
        #[cfg(unix)]
        if let Ok(dir) = std::env::var("NUCHASE_INSTANCE_SPILL_DIR") {
            if !dir.is_empty() {
                let bytes = chunk_len * std::mem::size_of::<T>();
                match map_spill_file(&dir, bytes) {
                    Some(base) => {
                        let ptr = base as *mut T;
                        for i in 0..chunk_len {
                            unsafe { ptr.add(i).write(self.pad) };
                        }
                        return Chunk {
                            ptr,
                            mmap_bytes: bytes,
                        };
                    }
                    None => {
                        crate::fault::note_spill_fallback();
                        warn_spill_unusable(&dir);
                    }
                }
            }
        }
        let boxed = vec![self.pad; chunk_len].into_boxed_slice();
        Chunk {
            ptr: Box::into_raw(boxed) as *mut T,
            mmap_bytes: 0,
        }
    }

    /// Reserves a region of `n <= chunk_len` elements, padding to the
    /// next chunk boundary first if the region would straddle one.
    /// Returns the region's global start index; its contents are
    /// unspecified (pad or stale data from before a truncate).
    pub fn reserve(&mut self, n: usize) -> u32 {
        assert!(
            n <= self.chunk_len(),
            "region of {n} exceeds chunk length {}",
            self.chunk_len()
        );
        if n == 0 {
            return self.len;
        }
        let off = (self.len as usize) & self.mask;
        if off + n > self.chunk_len() {
            self.len += (self.chunk_len() - off) as u32;
        }
        let chunk_i = (self.len as usize) >> self.shift;
        while self.chunks.len() <= chunk_i {
            // Fault site: fires *before* the allocation, so an injected
            // growth failure leaves the arena untouched (the region was
            // never handed out) and a round replay is idempotent.
            crate::fault::check(crate::fault::FaultSite::ArenaGrow);
            let c = self.new_chunk();
            self.chunks.push(c);
        }
        let start = self.len;
        self.len += n as u32;
        start
    }

    /// Appends a slice (never straddling a chunk) and returns its global
    /// start index.
    pub fn push_slice(&mut self, s: &[T]) -> u32 {
        let start = self.reserve(s.len());
        if !s.is_empty() {
            unsafe { std::ptr::copy_nonoverlapping(s.as_ptr(), self.ptr_at(start), s.len()) };
        }
        start
    }

    /// Raw pointer to global index `i` (must lie in an allocated chunk).
    #[inline]
    fn ptr_at(&self, i: u32) -> *mut T {
        let i = i as usize;
        debug_assert!((i >> self.shift) < self.chunks.len());
        unsafe {
            self.chunks
                .get_unchecked(i >> self.shift)
                .ptr
                .add(i & self.mask)
        }
    }

    /// The `len` elements starting at global index `start`. The region
    /// must come from a single [`ChunkedArena::reserve`]/
    /// [`ChunkedArena::push_slice`] call (so it cannot straddle chunks).
    #[inline]
    pub fn get(&self, start: u32, len: u32) -> &[T] {
        if len == 0 {
            return &[];
        }
        debug_assert!(
            ((start as usize) & self.mask) + len as usize <= self.chunk_len(),
            "region straddles a chunk"
        );
        debug_assert!(start + len <= self.len);
        unsafe { std::slice::from_raw_parts(self.ptr_at(start), len as usize) }
    }

    /// Mutable view of a region (same contract as [`ChunkedArena::get`]).
    #[inline]
    pub fn get_mut(&mut self, start: u32, len: u32) -> &mut [T] {
        if len == 0 {
            return &mut [];
        }
        debug_assert!(((start as usize) & self.mask) + len as usize <= self.chunk_len());
        debug_assert!(start + len <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr_at(start), len as usize) }
    }

    /// The element at global index `i`.
    #[inline]
    pub fn at(&self, i: u32) -> T {
        debug_assert!(i < self.len);
        unsafe { *self.ptr_at(i) }
    }

    /// Overwrites the element at global index `i`.
    #[inline]
    pub fn set(&mut self, i: u32, v: T) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr_at(i) = v };
    }

    /// Relocates a region to a fresh one of `new_cap` elements, copying
    /// the `old_len` stored elements. The arena is append-only, so the
    /// new region never overlaps the old; the abandoned copy is reclaimed
    /// only by [`ChunkedArena::truncate_to`] past it (or drop).
    pub fn grow_region(&mut self, old_start: u32, old_len: u32, new_cap: usize) -> u32 {
        debug_assert!(old_len as usize <= new_cap);
        let new_start = self.reserve(new_cap);
        debug_assert!(
            new_start >= old_start + old_len,
            "grow_region must not overlap"
        );
        if old_len > 0 {
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.ptr_at(old_start) as *const T,
                    self.ptr_at(new_start),
                    old_len as usize,
                );
            }
        }
        new_start
    }

    /// The current high-water mark, for a later
    /// [`ChunkedArena::truncate_to`].
    #[inline]
    pub fn mark(&self) -> u32 {
        self.len
    }

    /// Rolls the high-water mark back to a previous [`ChunkedArena::mark`]
    /// (the mid-run budget-stop path). Chunks stay allocated for reuse;
    /// regions allocated after the mark become invalid.
    pub fn truncate_to(&mut self, mark: u32) {
        assert!(mark <= self.len, "truncate_to past the high-water mark");
        self.len = mark;
    }

    /// Drops everything but keeps the chunks for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Resident heap bytes (heap chunks only — file-backed chunks are the
    /// kernel's to page, counted by [`ChunkedArena::file_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        let per = self.chunk_len() * std::mem::size_of::<T>();
        self.chunks.capacity() * std::mem::size_of::<Chunk<T>>()
            + self.chunks.iter().filter(|c| c.mmap_bytes == 0).count() * per
    }

    /// Bytes held in file-backed chunks.
    pub fn file_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.mmap_bytes).sum()
    }

    /// Number of allocated chunks (heap or file-backed).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

impl<T: Copy + Default> Default for ChunkedArena<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Copy> Drop for ChunkedArena<T> {
    fn drop(&mut self) {
        let chunk_len = self.chunk_len();
        for c in &self.chunks {
            if c.mmap_bytes > 0 {
                #[cfg(unix)]
                unsafe {
                    sys::munmap(c.ptr as *mut std::os::raw::c_void, c.mmap_bytes);
                }
            } else {
                unsafe {
                    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                        c.ptr, chunk_len,
                    )));
                }
            }
        }
    }
}

impl<T: Copy> Clone for ChunkedArena<T> {
    /// Clones into heap chunks regardless of the source's backing (a
    /// clone is a fresh working set; it re-spills on its own growth).
    fn clone(&self) -> Self {
        let chunk_len = self.chunk_len();
        let mut out = ChunkedArena::with_chunk_len(chunk_len, self.pad);
        out.len = self.len;
        out.chunks.reserve(self.chunks.len());
        for c in &self.chunks {
            let src = unsafe { std::slice::from_raw_parts(c.ptr as *const T, chunk_len) };
            let boxed: Box<[T]> = src.into();
            out.chunks.push(Chunk {
                ptr: Box::into_raw(boxed) as *mut T,
                mmap_bytes: 0,
            });
        }
        out
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for ChunkedArena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedArena")
            .field("len", &self.len)
            .field("chunk_len", &self.chunk_len())
            .field("chunks", &self.chunks.len())
            .field("file_bytes", &self.file_bytes())
            .finish()
    }
}

/// Sentinel `cap` marking a list that graduated to a dedicated `Vec`.
const LARGE: u32 = u32::MAX;

/// One growable list inside a [`SpillArena`].
#[derive(Clone, Copy, Debug)]
struct SpillList {
    /// Region start in the data arena, or an index into `large` when
    /// `cap == LARGE`.
    start: u32,
    len: u32,
    cap: u32,
}

/// Growable posting lists packed into a [`ChunkedArena`]: the overflow
/// storage for instance posting lists ([`crate::instance::Instance`]'s
/// per-predicate spill arena). Lists double by relocation within the
/// arena and graduate to dedicated heap `Vec`s once they outgrow a
/// chunk, so the chunked backing (and its file-spill mode) covers the
/// long tail of small lists while hub-scale lists keep `Vec` behavior.
#[derive(Clone, Debug)]
pub struct SpillArena<T: Copy> {
    data: ChunkedArena<T>,
    lists: Vec<SpillList>,
    large: Vec<Vec<T>>,
}

impl<T: Copy + Default> Default for SpillArena<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Copy> SpillArena<T> {
    /// An empty arena; `pad` as in [`ChunkedArena::new`].
    pub fn new(pad: T) -> Self {
        SpillArena {
            data: ChunkedArena::new(pad),
            lists: Vec::new(),
            large: Vec::new(),
        }
    }

    /// Test hook: an explicit chunk length to exercise graduation.
    #[cfg(test)]
    fn with_chunk_len(chunk_len: usize, pad: T) -> Self {
        SpillArena {
            data: ChunkedArena::with_chunk_len(chunk_len, pad),
            lists: Vec::new(),
            large: Vec::new(),
        }
    }

    /// Creates a new list seeded with `first`, returning its slot id.
    pub fn alloc(&mut self, first: &[T]) -> u32 {
        let slot = self.lists.len() as u32;
        let cap = first.len().next_power_of_two().max(8);
        if cap > self.data.chunk_len() {
            let idx = self.large.len() as u32;
            self.large.push(first.to_vec());
            self.lists.push(SpillList {
                start: idx,
                len: 0,
                cap: LARGE,
            });
            return slot;
        }
        let start = self.data.reserve(cap);
        self.data
            .get_mut(start, first.len() as u32)
            .copy_from_slice(first);
        self.lists.push(SpillList {
            start,
            len: first.len() as u32,
            cap: cap as u32,
        });
        slot
    }

    /// Appends `v` to list `slot`, doubling (or graduating) on overflow.
    pub fn push(&mut self, slot: u32, v: T) {
        let list = &mut self.lists[slot as usize];
        if list.cap == LARGE {
            self.large[list.start as usize].push(v);
            return;
        }
        if list.len == list.cap {
            let new_cap = (list.cap as usize) * 2;
            if new_cap > self.data.chunk_len() {
                // Graduate: beyond a chunk, a dedicated Vec is both
                // simpler and cheaper than multi-chunk stitching.
                let idx = self.large.len() as u32;
                let mut v2 = Vec::with_capacity(new_cap);
                v2.extend_from_slice(self.data.get(list.start, list.len));
                v2.push(v);
                self.large.push(v2);
                *list = SpillList {
                    start: idx,
                    len: 0,
                    cap: LARGE,
                };
                return;
            }
            list.start = self.data.grow_region(list.start, list.len, new_cap);
            list.cap = new_cap as u32;
            // Reborrow: grow_region took `&mut self.data`.
            let list = &mut self.lists[slot as usize];
            self.data.set(list.start + list.len, v);
            list.len += 1;
            return;
        }
        self.data.set(list.start + list.len, v);
        list.len += 1;
    }

    /// The contents of list `slot`.
    #[inline]
    pub fn list(&self, slot: u32) -> &[T] {
        let list = self.lists[slot as usize];
        if list.cap == LARGE {
            &self.large[list.start as usize]
        } else {
            self.data.get(list.start, list.len)
        }
    }

    /// Number of lists ever allocated.
    pub fn list_count(&self) -> usize {
        self.lists.len()
    }

    /// Resident heap bytes (lists bookkeeping + heap chunks + graduated
    /// `Vec`s); file-backed chunk bytes via [`SpillArena::file_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.data.heap_bytes()
            + self.lists.capacity() * std::mem::size_of::<SpillList>()
            + self.large.capacity() * std::mem::size_of::<Vec<T>>()
            + self
                .large
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<T>())
                .sum::<usize>()
    }

    /// Bytes held in file-backed chunks.
    pub fn file_bytes(&self) -> usize {
        self.data.file_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_slice_pads_instead_of_straddling() {
        let mut a: ChunkedArena<u32> = ChunkedArena::with_chunk_len(8, 0);
        let r1 = a.push_slice(&[1, 2, 3]);
        let r2 = a.push_slice(&[4, 5, 6]);
        // The third slice would straddle the 8-element boundary: it must
        // start at the next chunk, leaving a 2-element pad.
        let r3 = a.push_slice(&[7, 8, 9]);
        assert_eq!((r1, r2, r3), (0, 3, 8));
        assert_eq!(a.get(r1, 3), &[1, 2, 3]);
        assert_eq!(a.get(r2, 3), &[4, 5, 6]);
        assert_eq!(a.get(r3, 3), &[7, 8, 9]);
        assert_eq!(a.len(), 11);
        assert_eq!(a.chunk_count(), 2);
        // A chunk-filling slice is the largest legal region.
        let r4 = a.push_slice(&[0; 8]);
        assert_eq!(r4 % 8, 0);
        assert_eq!(a.get(r4, 8), &[0; 8]);
    }

    #[test]
    fn empty_slices_are_free() {
        let mut a: ChunkedArena<u32> = ChunkedArena::with_chunk_len(8, 0);
        let r = a.push_slice(&[]);
        assert_eq!(r, 0);
        assert_eq!(a.len(), 0);
        assert_eq!(a.chunk_count(), 0);
        assert_eq!(a.get(r, 0), &[] as &[u32]);
    }

    #[test]
    fn truncate_rolls_back_across_a_chunk_seam() {
        let mut a: ChunkedArena<u32> = ChunkedArena::with_chunk_len(4, 99);
        a.push_slice(&[1, 2, 3]); // chunk 0 (+1 pad)
        let mark = a.mark();
        a.push_slice(&[4, 5]); // chunk 1 after padding
        a.push_slice(&[6, 7, 8]); // chunk 2
        assert_eq!(a.chunk_count(), 3);
        a.truncate_to(mark);
        assert_eq!(a.len(), mark);
        // Chunks stay allocated; re-pushing reuses them and the replayed
        // regions land at the same indexes a fresh run would produce.
        let r = a.push_slice(&[40, 50]);
        assert_eq!(r, 4);
        assert_eq!(a.get(r, 2), &[40, 50]);
        assert_eq!(a.chunk_count(), 3);
        assert_eq!(a.get(0, 3), &[1, 2, 3]);
    }

    #[test]
    fn grow_region_copies_across_chunks() {
        let mut a: ChunkedArena<u32> = ChunkedArena::with_chunk_len(8, 0);
        let r = a.push_slice(&[1, 2, 3, 4]);
        a.push_slice(&[9, 9]); // force the grown region into a new spot
        let r2 = a.grow_region(r, 4, 8);
        assert_eq!(a.get(r2, 4), &[1, 2, 3, 4]);
        assert!(r2 >= 6);
        // Old region is abandoned but still readable until truncated.
        assert_eq!(a.get(r, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn at_and_set_address_single_elements() {
        let mut a: ChunkedArena<u64> = ChunkedArena::with_chunk_len(4, 0);
        let r = a.reserve(4);
        for i in 0..4u32 {
            a.set(r + i, u64::from(i) * 10);
        }
        let r2 = a.reserve(3); // next chunk stays independent
        a.set(r2, 777);
        for i in 0..4u32 {
            assert_eq!(a.at(r + i), u64::from(i) * 10);
        }
        assert_eq!(a.at(r2), 777);
    }

    #[test]
    fn clone_detaches_storage() {
        let mut a: ChunkedArena<u32> = ChunkedArena::with_chunk_len(4, 0);
        let r = a.push_slice(&[1, 2, 3]);
        let mut b = a.clone();
        b.get_mut(r, 3)[0] = 100;
        assert_eq!(a.get(r, 3), &[1, 2, 3]);
        assert_eq!(b.get(r, 3), &[100, 2, 3]);
        assert_eq!(b.len(), a.len());
    }

    #[test]
    fn spill_lists_grow_and_interleave() {
        let mut s: SpillArena<u32> = SpillArena::with_chunk_len(64, 0);
        let a = s.alloc(&[1, 2, 3]);
        let b = s.alloc(&[10]);
        for i in 0..40 {
            s.push(a, 100 + i);
            s.push(b, 200 + i);
        }
        let want_a: Vec<u32> = [1, 2, 3]
            .into_iter()
            .chain((0..40).map(|i| 100 + i))
            .collect();
        let want_b: Vec<u32> = [10].into_iter().chain((0..40).map(|i| 200 + i)).collect();
        assert_eq!(s.list(a), &want_a[..]);
        assert_eq!(s.list(b), &want_b[..]);
        assert_eq!(s.list_count(), 2);
    }

    #[test]
    fn oversized_lists_graduate_to_heap_vecs() {
        let mut s: SpillArena<u32> = SpillArena::with_chunk_len(16, 0);
        let a = s.alloc(&[0]);
        for i in 1..1000 {
            s.push(a, i);
        }
        let want: Vec<u32> = (0..1000).collect();
        assert_eq!(s.list(a), &want[..]);
        // An alloc already bigger than a chunk starts out graduated.
        let big: Vec<u32> = (0..50).collect();
        let b = s.alloc(&big);
        s.push(b, 50);
        let want_b: Vec<u32> = (0..51).collect();
        assert_eq!(s.list(b), &want_b[..]);
        assert!(s.heap_bytes() > 0);
    }

    #[cfg(unix)]
    #[test]
    fn file_backed_chunks_round_trip() {
        let dir = std::env::temp_dir().join(format!("nuchase-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("NUCHASE_INSTANCE_SPILL_DIR", &dir);
        let mut a: ChunkedArena<u64> = ChunkedArena::with_chunk_len(1 << 12, 7);
        let r1 = a.push_slice(&[11, 22, 33]);
        let r2 = a.reserve(1 << 12); // second chunk
        std::env::remove_var("NUCHASE_INSTANCE_SPILL_DIR");
        a.get_mut(r2, 4)[..4].copy_from_slice(&[5, 6, 7, 8]);
        assert_eq!(a.get(r1, 3), &[11, 22, 33]);
        assert_eq!(a.get(r2, 4), &[5, 6, 7, 8]);
        assert_eq!(a.file_bytes(), 2 * (1 << 12) * std::mem::size_of::<u64>());
        assert_eq!(
            a.heap_bytes(),
            a.chunks.capacity() * std::mem::size_of::<Chunk<u64>>()
        );
        // Clones land on the heap and survive the mapping's drop.
        let b = a.clone();
        drop(a);
        assert_eq!(b.get(r1, 3), &[11, 22, 33]);
        assert_eq!(b.file_bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_spill_dir_falls_back_to_heap() {
        std::env::set_var(
            "NUCHASE_INSTANCE_SPILL_DIR",
            "/nonexistent/nuchase-no-such-dir",
        );
        let mut a: ChunkedArena<u32> = ChunkedArena::with_chunk_len(8, 0);
        let r = a.push_slice(&[1, 2]);
        std::env::remove_var("NUCHASE_INSTANCE_SPILL_DIR");
        assert_eq!(a.get(r, 2), &[1, 2]);
        assert_eq!(a.file_bytes(), 0);
    }
}
