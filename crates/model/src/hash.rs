//! Fast, allocation-free hashing of terms and term tuples.
//!
//! The chase hashes atoms and trigger keys on every step, so the default
//! SipHash of `std::collections::HashMap` (DoS-resistant, but slow and
//! only reachable through the `Hash` trait machinery) is the wrong tool
//! for the hot path. This module provides an FxHash-style multiplicative
//! hash over [`Term`]s that can be driven directly from a slice — no
//! `Hasher` state machine, no per-call setup — plus a `BuildHasher` for
//! the interior `HashMap`s that key on single terms.
//!
//! All inputs are interned ids controlled by this process, so HashDoS
//! resistance is irrelevant here.

use std::hash::{BuildHasherDefault, Hasher};

use crate::symbols::PredId;
use crate::term::Term;

/// The Fx multiplier (Firefox / rustc's FxHash constant).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A 64-bit code injectively encoding a term (2-bit tag + 62-bit id).
#[inline]
pub fn term_code(t: Term) -> u64 {
    match t {
        Term::Const(c) => u64::from(c.0) << 2,
        Term::Null(n) => (u64::from(n.0) << 2) | 0b01,
        Term::Var(v) => (u64::from(v.0) << 2) | 0b10,
    }
}

/// Folds one 64-bit word into a running hash.
#[inline]
pub fn fold(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(K)
}

/// Hash of an atom: predicate + argument tuple.
#[inline]
pub fn hash_atom(pred: PredId, args: &[Term]) -> u64 {
    let mut h = fold(0, u64::from(pred.0));
    for &t in args {
        h = fold(h, term_code(t));
    }
    // Finalize so low bits depend on every input (open-addressing tables
    // index with `h & mask`).
    h ^ (h >> 32)
}

/// Hash of a bare term tuple (used for trigger keys).
#[inline]
pub fn hash_terms(terms: &[Term]) -> u64 {
    let mut h = fold(0, terms.len() as u64);
    for &t in terms {
        h = fold(h, term_code(t));
    }
    h ^ (h >> 32)
}

/// A grow-only open-addressing index shared by the workspace's
/// arena-backed stores (instance dedup, trigger-key sets, null
/// interning).
///
/// The table stores no keys itself — only `(hash tag, ordinal)` slots
/// packing the high 32 hash bits as a cheap rejection tag, so a probe
/// touches a single cache line before the caller's authoritative
/// verification runs against its own arena. Invariants the callers rely
/// on (and must preserve):
///
/// * **grow before probing for insertion** — [`TagTable::reserve_one`]
///   first, then [`TagTable::probe`], then [`TagTable::fill`] with the
///   vacant slot; growing between probe and fill would invalidate the
///   slot index;
/// * **collision safety** — a tag match is never trusted; the `eq`
///   closure must compare the real key;
/// * load factor stays below ¾; no deletions, so linear probing needs no
///   tombstones.
#[derive(Debug, Default, Clone)]
pub struct TagTable {
    slots: Vec<u64>,
    len: usize,
}

const EMPTY_SLOT: u64 = u64::MAX;

#[inline]
fn pack_slot(hash: u64, ordinal: u32) -> u64 {
    ((hash >> 32) << 32) | u64::from(ordinal)
}

/// Result of [`TagTable::probe`]: the stored ordinal, or the vacant slot
/// where an insertion belongs.
pub enum TagProbe {
    /// An entry with this key exists, at the given ordinal.
    Found(u32),
    /// No such entry; [`TagTable::fill`] this slot to insert it.
    Vacant(usize),
}

impl TagTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Probes for an entry with the given hash, verifying candidates via
    /// `eq` (called with the stored ordinal).
    ///
    /// # Panics
    /// The table must have spare capacity (call [`TagTable::reserve_one`]
    /// first); a full or zero-capacity table would loop or index out of
    /// bounds. Use [`TagTable::find`] for read-only lookups.
    #[inline]
    pub fn probe(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> TagProbe {
        let mask = self.slots.len() - 1;
        let tag = hash >> 32;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY_SLOT {
                return TagProbe::Vacant(i);
            }
            if slot >> 32 == tag && eq(slot as u32) {
                return TagProbe::Found(slot as u32);
            }
            i = (i + 1) & mask;
        }
    }

    /// Hints the CPU to fetch the slot line where a probe for `hash`
    /// would start. The batch emit pass runs a fixed distance ahead of
    /// its probe loop with this, so the table's random-access misses
    /// overlap instead of serializing. Purely a hint — safe at any
    /// capacity, compiles to nothing off x86-64.
    #[inline]
    pub fn prefetch(&self, hash: u64) {
        #[cfg(target_arch = "x86_64")]
        if !self.slots.is_empty() {
            let i = (hash as usize) & (self.slots.len() - 1);
            // SAFETY: `i` is in bounds and prefetch dereferences nothing.
            unsafe {
                std::arch::x86_64::_mm_prefetch(
                    self.slots.as_ptr().add(i).cast::<i8>(),
                    std::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = hash;
    }

    /// Read-only lookup (safe on an empty table).
    pub fn find(&self, hash: u64, eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(hash, eq) {
            TagProbe::Found(ordinal) => Some(ordinal),
            TagProbe::Vacant(_) => None,
        }
    }

    /// Read-only probe that also reports *where* a missing entry would
    /// go (safe on an empty table, where the answer is slot 0 of a
    /// yet-to-exist table). Callers that later insert under the same
    /// capacity can resume from that slot via [`TagTable::probe_at`]
    /// instead of re-walking the probe chain — the chase resolve stage
    /// probes the snapshot, and the commit stage reuses the walk.
    pub fn locate(&self, hash: u64, eq: impl FnMut(u32) -> bool) -> TagProbe {
        if self.slots.is_empty() {
            return TagProbe::Vacant(0);
        }
        self.probe(hash, eq)
    }

    /// Resumes a probe at `start` — valid only when `start` was returned
    /// by a probe for the *same hash* at the *same capacity* (no
    /// intervening rehash; check [`TagTable::slot_count`]): entries are
    /// never moved or deleted, so the chain prefix before `start` is
    /// immutable and need not be re-walked. Later insertions can only
    /// have landed at or after `start` in the chain.
    ///
    /// # Panics
    /// Same contract as [`TagTable::probe`]: the table must have spare
    /// capacity.
    #[inline]
    pub fn probe_at(&self, start: usize, hash: u64, mut eq: impl FnMut(u32) -> bool) -> TagProbe {
        let mask = self.slots.len() - 1;
        let tag = hash >> 32;
        let mut i = start & mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY_SLOT {
                return TagProbe::Vacant(i);
            }
            if slot >> 32 == tag && eq(slot as u32) {
                return TagProbe::Found(slot as u32);
            }
            i = (i + 1) & mask;
        }
    }

    /// Would inserting one more entry trigger a rehash? (The growth
    /// condition of [`TagTable::reserve_one`].)
    #[inline]
    pub fn insert_would_grow(&self) -> bool {
        (self.len + 1) * 4 >= self.slots.len() * 3
    }

    /// Ensures capacity for one more entry, rehashing the stored entries
    /// if needed. `hashes[ordinal]` must be each stored entry's hash.
    pub fn reserve_one(&mut self, hashes: &[u64]) {
        if self.insert_would_grow() {
            let new_cap = (self.slots.len() * 2).max(16);
            let mut slots = vec![EMPTY_SLOT; new_cap];
            let mask = new_cap - 1;
            for &slot in &self.slots {
                if slot != EMPTY_SLOT {
                    let hash = hashes[(slot as u32) as usize];
                    let mut i = (hash as usize) & mask;
                    while slots[i] != EMPTY_SLOT {
                        i = (i + 1) & mask;
                    }
                    slots[i] = pack_slot(hash, slot as u32);
                }
            }
            self.slots = slots;
        }
    }

    /// Fills the vacant slot returned by a preceding [`TagTable::probe`]
    /// (with no intervening `reserve_one`).
    pub fn fill(&mut self, vacant: usize, hash: u64, ordinal: u32) {
        debug_assert_eq!(self.slots[vacant], EMPTY_SLOT);
        self.slots[vacant] = pack_slot(hash, ordinal);
        self.len += 1;
    }

    /// Empties the table, keeping its slot allocation. Used by arenas that
    /// are recycled between work units (e.g. per-task trigger dedup in the
    /// parallel executor). O(capacity); when the caller has tracked the
    /// filled slots, [`TagTable::clear_sparse`] is O(entries) instead.
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        self.len = 0;
    }

    /// Empties the table by wiping exactly the given slots — O(touched)
    /// instead of O(capacity). `touched` must contain every slot filled
    /// since the table was last empty (the order is irrelevant; emptying
    /// all of them cannot strand a probe chain because no entries
    /// remain).
    pub fn clear_sparse(&mut self, touched: &[u32]) {
        for &i in touched {
            self.slots[i as usize] = EMPTY_SLOT;
        }
        self.len = 0;
        debug_assert!(self.slots.iter().all(|&s| s == EMPTY_SLOT));
    }

    /// The current slot capacity (callers use a change in this value to
    /// detect a rehash, which scatters entries to untracked slots).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Heap bytes held by the slot array (memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<u64>()
    }

    /// Load factor: entries / slots (0 on an empty table; below ¾ by
    /// the growth policy).
    pub fn load_factor(&self) -> f64 {
        if self.slots.is_empty() {
            0.0
        } else {
            self.len as f64 / self.slots.len() as f64
        }
    }
}

/// A `std`-compatible [`Hasher`] with Fx mixing, for interior `HashMap`s
/// keyed on small id types ([`Term`], [`PredId`], …).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let h = self.state;
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.state = fold(self.state, u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.state = fold(self.state, u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = fold(self.state, n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.state = fold(self.state, n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with Fx hashing.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with Fx hashing.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{ConstId, NullId, VarId};

    #[test]
    fn term_codes_are_injective_across_kinds() {
        let terms = [
            Term::Const(ConstId(0)),
            Term::Const(ConstId(1)),
            Term::Null(NullId(0)),
            Term::Null(NullId(1)),
            Term::Var(VarId(0)),
            Term::Var(VarId(1)),
        ];
        let codes: std::collections::HashSet<u64> = terms.iter().map(|&t| term_code(t)).collect();
        assert_eq!(codes.len(), terms.len());
    }

    #[test]
    fn tuple_hash_depends_on_order_and_length() {
        let a = Term::Const(ConstId(1));
        let b = Term::Const(ConstId(2));
        assert_ne!(hash_terms(&[a, b]), hash_terms(&[b, a]));
        assert_ne!(hash_terms(&[a]), hash_terms(&[a, a]));
        assert_eq!(hash_terms(&[a, b]), hash_terms(&[a, b]));
    }

    #[test]
    fn atom_hash_distinguishes_predicates() {
        let a = Term::Const(ConstId(1));
        assert_ne!(hash_atom(PredId(0), &[a]), hash_atom(PredId(1), &[a]));
    }

    #[test]
    fn fx_hasher_is_usable_in_std_maps() {
        let mut m: FxHashMap<Term, u32> = FxHashMap::default();
        m.insert(Term::Const(ConstId(3)), 7);
        assert_eq!(m.get(&Term::Const(ConstId(3))), Some(&7));
    }
}
