//! Fast, allocation-free hashing of terms and term tuples.
//!
//! The chase hashes atoms and trigger keys on every step, so the default
//! SipHash of `std::collections::HashMap` (DoS-resistant, but slow and
//! only reachable through the `Hash` trait machinery) is the wrong tool
//! for the hot path. This module provides an FxHash-style multiplicative
//! hash over [`Term`]s that can be driven directly from a slice — no
//! `Hasher` state machine, no per-call setup — plus a `BuildHasher` for
//! the interior `HashMap`s that key on single terms.
//!
//! All inputs are interned ids controlled by this process, so HashDoS
//! resistance is irrelevant here.

use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU8, Ordering};

use crate::symbols::PredId;
use crate::term::Term;

/// The Fx multiplier (Firefox / rustc's FxHash constant).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A 64-bit code injectively encoding a term (2-bit tag + 62-bit id).
#[inline]
pub fn term_code(t: Term) -> u64 {
    match t {
        Term::Const(c) => u64::from(c.0) << 2,
        Term::Null(n) => (u64::from(n.0) << 2) | 0b01,
        Term::Var(v) => (u64::from(v.0) << 2) | 0b10,
    }
}

/// Folds one 64-bit word into a running hash.
#[inline]
pub fn fold(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(K)
}

/// Hash of an atom: predicate + argument tuple.
#[inline]
pub fn hash_atom(pred: PredId, args: &[Term]) -> u64 {
    let mut h = fold(0, u64::from(pred.0));
    for &t in args {
        h = fold(h, term_code(t));
    }
    // Finalize so low bits depend on every input (open-addressing tables
    // index with `h & mask`).
    h ^ (h >> 32)
}

/// Hash of a bare term tuple (used for trigger keys).
#[inline]
pub fn hash_terms(terms: &[Term]) -> u64 {
    let mut h = fold(0, terms.len() as u64);
    for &t in terms {
        h = fold(h, term_code(t));
    }
    h ^ (h >> 32)
}

/// Probe-order layouts of a [`TagTable`] (selectable per table; the
/// process default is [`TableLayout::Bucketized`] unless the
/// `NUCHASE_FORCE_BUCKET_LAYOUT` environment variable or
/// [`set_table_layout`] says otherwise).
///
/// Both layouts store the same packed slots; only the traversal order
/// differs, so the choice is unobservable through the table's API (the
/// chase's byte-identity suites sweep it forced on and off to prove
/// that).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableLayout {
    /// Classic linear probing: start at `hash & mask`, step one slot at
    /// a time. A probe that starts in the last lane of a cache line
    /// pays a second line on the very next step.
    Linear,
    /// Cache-line-bucketized probing: the low hash bits pick a 64-byte
    /// line (8 slots) and the probe scans all of its lanes before
    /// moving to the next line, so a probe resolves within one line
    /// unless that entire line is full.
    Bucketized,
}

/// Slots per 64-byte cache line (the bucket width of
/// [`TableLayout::Bucketized`]).
pub const LANES: usize = 8;

/// The distance batched probes run their software prefetch ahead of the
/// probe loop (see `TermTupleSet::insert_batch` in the engine crate).
/// Eight keeps ~8 independent line fetches in flight — enough to cover
/// a DRAM miss at these probe costs without thrashing L1.
pub const PREFETCH_DIST: usize = 8;

/// Number of hash partitions used by partitioned table wrappers (the
/// engine's fired set and null-intern store): a power of two, small
/// enough that per-partition bookkeeping stays negligible, large enough
/// that a binned batch walks tables a quarter the size.
pub const PARTITIONS: usize = 4;

/// The partition a hash routes to. Bits 28..30 sit above any realistic
/// bucket-index range (a table would need billions of slots to consume
/// them) and below the 32-bit tag, so partitioning stays independent of
/// both within-table probe order and tag verification.
#[inline]
pub fn partition(hash: u64) -> usize {
    ((hash >> 28) as usize) & (PARTITIONS - 1)
}

/// One 64-byte-aligned line of 8 packed slots. Alignment guarantees a
/// bucketized probe touches exactly one cache line per bucket.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(64))]
struct CacheLine([u64; LANES]);

const EMPTY_LINE: CacheLine = CacheLine([EMPTY_SLOT; LANES]);

/// Process-wide default layout for newly created tables:
/// 0 = unresolved (consult the environment once), 1 = linear,
/// 2 = bucketized.
static DEFAULT_LAYOUT: AtomicU8 = AtomicU8::new(0);

/// Overrides the process default [`TableLayout`] for tables created
/// afterwards. The in-process hook behind the byte-identity sweeps;
/// normal runs leave the default alone (bucketized, or whatever
/// `NUCHASE_FORCE_BUCKET_LAYOUT` forces).
pub fn set_table_layout(layout: TableLayout) {
    DEFAULT_LAYOUT.store(
        match layout {
            TableLayout::Linear => 1,
            TableLayout::Bucketized => 2,
        },
        Ordering::Relaxed,
    );
}

/// The layout newly created tables will use.
pub fn default_table_layout() -> TableLayout {
    match DEFAULT_LAYOUT.load(Ordering::Relaxed) {
        1 => TableLayout::Linear,
        2 => TableLayout::Bucketized,
        _ => {
            // First touch: resolve NUCHASE_FORCE_BUCKET_LAYOUT (`0` or
            // `false` forces linear, `1`/`true` or unset means
            // bucketized; anything else warns once and keeps the
            // default). Racing first touches resolve identically.
            let layout = match std::env::var("NUCHASE_FORCE_BUCKET_LAYOUT").ok().as_deref() {
                Some("0") | Some("false") => TableLayout::Linear,
                Some("1") | Some("true") | None => TableLayout::Bucketized,
                Some(other) => {
                    eprintln!(
                        "nuchase: ignoring malformed NUCHASE_FORCE_BUCKET_LAYOUT={other:?} \
                         (expected 0/1/true/false); using the bucketized layout"
                    );
                    TableLayout::Bucketized
                }
            };
            set_table_layout(layout);
            layout
        }
    }
}

/// A grow-only open-addressing index shared by the workspace's
/// arena-backed stores (instance dedup, trigger-key sets, null
/// interning).
///
/// The table stores no keys itself — only `(hash tag, ordinal)` slots
/// packing the high 32 hash bits as a cheap rejection tag, so a probe
/// touches a single cache line before the caller's authoritative
/// verification runs against its own arena. Slots live in 64-byte
/// aligned cache lines; the probe order over them is the table's
/// [`TableLayout`] (fixed at creation). Invariants the callers rely
/// on (and must preserve):
///
/// * **grow before probing for insertion** — [`TagTable::reserve_one`]
///   first, then [`TagTable::probe`], then [`TagTable::fill`] with the
///   vacant slot; growing between probe and fill would invalidate the
///   slot index;
/// * **collision safety** — a tag match is never trusted; the `eq`
///   closure must compare the real key;
/// * load factor stays below ¾; no deletions, so neither probe order
///   needs tombstones.
#[derive(Debug, Clone)]
pub struct TagTable {
    lines: Vec<CacheLine>,
    len: usize,
    bucketized: bool,
}

impl Default for TagTable {
    fn default() -> Self {
        TagTable {
            lines: Vec::new(),
            len: 0,
            bucketized: default_table_layout() == TableLayout::Bucketized,
        }
    }
}

const EMPTY_SLOT: u64 = u64::MAX;

#[inline]
fn pack_slot(hash: u64, ordinal: u32) -> u64 {
    ((hash >> 32) << 32) | u64::from(ordinal)
}

/// Result of [`TagTable::probe`]: the stored ordinal, or the vacant slot
/// where an insertion belongs.
pub enum TagProbe {
    /// An entry with this key exists, at the given ordinal.
    Found(u32),
    /// No such entry; [`TagTable::fill`] this slot to insert it.
    Vacant(usize),
}

impl TagTable {
    /// Creates an empty table with the process-default [`TableLayout`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table with an explicit probe layout (tests and
    /// benchmarks; production tables take the process default).
    pub fn with_layout(layout: TableLayout) -> Self {
        TagTable {
            lines: Vec::new(),
            len: 0,
            bucketized: layout == TableLayout::Bucketized,
        }
    }

    /// The probe order this table was created with.
    pub fn layout(&self) -> TableLayout {
        if self.bucketized {
            TableLayout::Bucketized
        } else {
            TableLayout::Linear
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_at(&self, i: usize) -> u64 {
        self.lines[i >> 3].0[i & 7]
    }

    /// Probes for an entry with the given hash, verifying candidates via
    /// `eq` (called with the stored ordinal).
    ///
    /// # Panics
    /// The table must have spare capacity (call [`TagTable::reserve_one`]
    /// first); a full or zero-capacity table would loop or index out of
    /// bounds. Use [`TagTable::find`] for read-only lookups.
    #[inline]
    pub fn probe(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> TagProbe {
        let tag = hash >> 32;
        if self.bucketized {
            let lmask = self.lines.len() - 1;
            let mut g = (hash as usize) & lmask;
            // Ring scan from a hash-derived start slot: entries with
            // different hashes sharing a line start at different slots,
            // so a hit usually lands on its first comparison (as in the
            // linear layout) while the traversal still touches at most
            // one line per eight probes. Bits 25.. are disjoint from
            // the line index (low bits), the partition (28..), and the
            // tag (32..) at every realistic capacity.
            let s = ((hash >> 25) as usize) & 7;
            loop {
                let line = &self.lines[g].0;
                for dk in 0..LANES {
                    let k = (s + dk) & 7;
                    let slot = line[k];
                    if slot == EMPTY_SLOT {
                        return TagProbe::Vacant((g << 3) | k);
                    }
                    if slot >> 32 == tag && eq(slot as u32) {
                        return TagProbe::Found(slot as u32);
                    }
                }
                g = (g + 1) & lmask;
            }
        } else {
            let mask = (self.lines.len() << 3) - 1;
            let mut i = (hash as usize) & mask;
            loop {
                let slot = self.slot_at(i);
                if slot == EMPTY_SLOT {
                    return TagProbe::Vacant(i);
                }
                if slot >> 32 == tag && eq(slot as u32) {
                    return TagProbe::Found(slot as u32);
                }
                i = (i + 1) & mask;
            }
        }
    }

    /// Hints the CPU to fetch the cache line where a probe for `hash`
    /// would start. The batch emit pass runs a fixed distance
    /// ([`PREFETCH_DIST`]) ahead of its probe loop with this, so the
    /// table's random-access misses overlap instead of serializing.
    /// Purely a hint — safe at any capacity, compiles to nothing off
    /// x86-64.
    #[inline]
    pub fn prefetch(&self, hash: u64) {
        #[cfg(target_arch = "x86_64")]
        if !self.lines.is_empty() {
            let g = if self.bucketized {
                (hash as usize) & (self.lines.len() - 1)
            } else {
                ((hash as usize) & ((self.lines.len() << 3) - 1)) >> 3
            };
            // SAFETY: `g` is in bounds and prefetch dereferences nothing.
            unsafe {
                std::arch::x86_64::_mm_prefetch(
                    self.lines.as_ptr().add(g).cast::<i8>(),
                    std::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = hash;
    }

    /// Read-only lookup (safe on an empty table).
    pub fn find(&self, hash: u64, eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.lines.is_empty() {
            return None;
        }
        match self.probe(hash, eq) {
            TagProbe::Found(ordinal) => Some(ordinal),
            TagProbe::Vacant(_) => None,
        }
    }

    /// Read-only probe that also reports *where* a missing entry would
    /// go (safe on an empty table, where the answer is slot 0 of a
    /// yet-to-exist table). Callers that later insert under the same
    /// capacity can resume from that slot via [`TagTable::probe_at`]
    /// instead of re-walking the probe chain — the chase resolve stage
    /// probes the snapshot, and the commit stage reuses the walk.
    pub fn locate(&self, hash: u64, eq: impl FnMut(u32) -> bool) -> TagProbe {
        if self.lines.is_empty() {
            return TagProbe::Vacant(0);
        }
        self.probe(hash, eq)
    }

    /// Resumes a probe at `start` — valid only when `start` was returned
    /// by a probe for the *same hash* at the *same capacity* (no
    /// intervening rehash; check [`TagTable::slot_count`]): entries are
    /// never moved or deleted, so the chain prefix before `start` is
    /// immutable and need not be re-walked. Later insertions can only
    /// have landed at or after `start` in the probe order (both layouts
    /// insert into the first vacant slot of the same traversal).
    ///
    /// # Panics
    /// Same contract as [`TagTable::probe`]: the table must have spare
    /// capacity.
    #[inline]
    pub fn probe_at(&self, start: usize, hash: u64, mut eq: impl FnMut(u32) -> bool) -> TagProbe {
        let tag = hash >> 32;
        if self.bucketized {
            let lmask = self.lines.len() - 1;
            let start = start & ((self.lines.len() << 3) - 1);
            let s = ((hash >> 25) as usize) & 7;
            let mut g = start >> 3;
            // Resume position within the line's ring scan: the hash
            // gives the ring's start slot, so `(k - s) & 7` recovers
            // how far into the ring the handed-back slot sits.
            let mut dk = (start & 7).wrapping_sub(s) & 7;
            loop {
                let line = &self.lines[g].0;
                while dk < LANES {
                    let k = (s + dk) & 7;
                    let slot = line[k];
                    if slot == EMPTY_SLOT {
                        return TagProbe::Vacant((g << 3) | k);
                    }
                    if slot >> 32 == tag && eq(slot as u32) {
                        return TagProbe::Found(slot as u32);
                    }
                    dk += 1;
                }
                g = (g + 1) & lmask;
                dk = 0;
            }
        } else {
            let mask = (self.lines.len() << 3) - 1;
            let mut i = start & mask;
            loop {
                let slot = self.slot_at(i);
                if slot == EMPTY_SLOT {
                    return TagProbe::Vacant(i);
                }
                if slot >> 32 == tag && eq(slot as u32) {
                    return TagProbe::Found(slot as u32);
                }
                i = (i + 1) & mask;
            }
        }
    }

    /// Would inserting one more entry trigger a rehash? (The growth
    /// condition of [`TagTable::reserve_one`].)
    #[inline]
    pub fn insert_would_grow(&self) -> bool {
        (self.len + 1) * 4 >= (self.lines.len() << 3) * 3
    }

    /// Places `packed` into the first vacant slot of the probe order for
    /// `hash` — the rehash half of [`TagTable::reserve_one`].
    fn place(lines: &mut [CacheLine], bucketized: bool, hash: u64, packed: u64) {
        if bucketized {
            let lmask = lines.len() - 1;
            let mut g = (hash as usize) & lmask;
            let s = ((hash >> 25) as usize) & 7;
            loop {
                let line = &mut lines[g].0;
                for dk in 0..LANES {
                    let k = (s + dk) & 7;
                    if line[k] == EMPTY_SLOT {
                        line[k] = packed;
                        return;
                    }
                }
                g = (g + 1) & lmask;
            }
        } else {
            let mask = (lines.len() << 3) - 1;
            let mut i = (hash as usize) & mask;
            while lines[i >> 3].0[i & 7] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            lines[i >> 3].0[i & 7] = packed;
        }
    }

    /// Ensures capacity for one more entry, rehashing the stored entries
    /// if needed. `hashes[ordinal]` must be each stored entry's hash.
    pub fn reserve_one(&mut self, hashes: &[u64]) {
        if self.insert_would_grow() {
            // Fault site: fires *before* the rehash touches anything, so
            // an injected growth failure leaves the table consistent.
            crate::fault::check(crate::fault::FaultSite::TableGrow);
            let new_lines = (self.lines.len() * 2).max(2);
            let mut lines = vec![EMPTY_LINE; new_lines];
            for line in &self.lines {
                for &slot in &line.0 {
                    if slot != EMPTY_SLOT {
                        let hash = hashes[(slot as u32) as usize];
                        Self::place(
                            &mut lines,
                            self.bucketized,
                            hash,
                            pack_slot(hash, slot as u32),
                        );
                    }
                }
            }
            self.lines = lines;
        }
    }

    /// Fills the vacant slot returned by a preceding [`TagTable::probe`]
    /// (with no intervening `reserve_one`).
    pub fn fill(&mut self, vacant: usize, hash: u64, ordinal: u32) {
        debug_assert_eq!(self.slot_at(vacant), EMPTY_SLOT);
        self.lines[vacant >> 3].0[vacant & 7] = pack_slot(hash, ordinal);
        self.len += 1;
    }

    /// Empties the table, keeping its slot allocation. Used by arenas that
    /// are recycled between work units (e.g. per-task trigger dedup in the
    /// parallel executor). O(capacity); when the caller has tracked the
    /// filled slots, [`TagTable::clear_sparse`] is O(entries) instead.
    pub fn clear(&mut self) {
        self.lines.fill(EMPTY_LINE);
        self.len = 0;
    }

    /// Empties the table by wiping exactly the given slots — O(touched)
    /// instead of O(capacity). `touched` must contain every slot filled
    /// since the table was last empty (the order is irrelevant; emptying
    /// all of them cannot strand a probe chain because no entries
    /// remain).
    pub fn clear_sparse(&mut self, touched: &[u32]) {
        for &i in touched {
            self.lines[(i >> 3) as usize].0[(i & 7) as usize] = EMPTY_SLOT;
        }
        self.len = 0;
        debug_assert!(self
            .lines
            .iter()
            .all(|l| l.0.iter().all(|&s| s == EMPTY_SLOT)));
    }

    /// The current slot capacity (callers use a change in this value to
    /// detect a rehash, which scatters entries to untracked slots).
    pub fn slot_count(&self) -> usize {
        self.lines.len() << 3
    }

    /// Heap bytes held by the slot array (memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.lines.capacity() * std::mem::size_of::<CacheLine>()
    }

    /// Load factor: entries / slots (0 on an empty table; below ¾ by
    /// the growth policy).
    pub fn load_factor(&self) -> f64 {
        if self.lines.is_empty() {
            0.0
        } else {
            self.len as f64 / self.slot_count() as f64
        }
    }
}

/// A `std`-compatible [`Hasher`] with Fx mixing, for interior `HashMap`s
/// keyed on small id types ([`Term`], [`PredId`], …).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let h = self.state;
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.state = fold(self.state, u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.state = fold(self.state, u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = fold(self.state, n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.state = fold(self.state, n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with Fx hashing.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with Fx hashing.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{ConstId, NullId, VarId};

    #[test]
    fn term_codes_are_injective_across_kinds() {
        let terms = [
            Term::Const(ConstId(0)),
            Term::Const(ConstId(1)),
            Term::Null(NullId(0)),
            Term::Null(NullId(1)),
            Term::Var(VarId(0)),
            Term::Var(VarId(1)),
        ];
        let codes: std::collections::HashSet<u64> = terms.iter().map(|&t| term_code(t)).collect();
        assert_eq!(codes.len(), terms.len());
    }

    #[test]
    fn tuple_hash_depends_on_order_and_length() {
        let a = Term::Const(ConstId(1));
        let b = Term::Const(ConstId(2));
        assert_ne!(hash_terms(&[a, b]), hash_terms(&[b, a]));
        assert_ne!(hash_terms(&[a]), hash_terms(&[a, a]));
        assert_eq!(hash_terms(&[a, b]), hash_terms(&[a, b]));
    }

    #[test]
    fn atom_hash_distinguishes_predicates() {
        let a = Term::Const(ConstId(1));
        assert_ne!(hash_atom(PredId(0), &[a]), hash_atom(PredId(1), &[a]));
    }

    #[test]
    fn fx_hasher_is_usable_in_std_maps() {
        let mut m: FxHashMap<Term, u32> = FxHashMap::default();
        m.insert(Term::Const(ConstId(3)), 7);
        assert_eq!(m.get(&Term::Const(ConstId(3))), Some(&7));
    }

    /// Drives a table through insert / find / clear_sparse cycles and a
    /// rehash, checking membership against a reference map.
    fn exercise_layout(layout: TableLayout) {
        let mut table = TagTable::with_layout(layout);
        assert_eq!(table.layout(), layout);
        let mut hashes: Vec<u64> = Vec::new();
        let key_hash = |k: u64| {
            let h = fold(fold(0, 1), k);
            h ^ (h >> 32)
        };
        let mut keys: Vec<u64> = Vec::new();
        for k in 0..5_000u64 {
            let h = key_hash(k);
            table.reserve_one(&hashes);
            match table.probe(h, |ord| keys[ord as usize] == k) {
                TagProbe::Vacant(slot) => {
                    let ord = keys.len() as u32;
                    keys.push(k);
                    hashes.push(h);
                    table.fill(slot, h, ord);
                }
                TagProbe::Found(_) => panic!("key {k} inserted twice"),
            }
        }
        assert_eq!(table.len(), 5_000);
        assert!(table.load_factor() < 0.75);
        for k in 0..6_000u64 {
            let found = table.find(key_hash(k), |ord| keys[ord as usize] == k);
            assert_eq!(found.is_some(), k < 5_000, "key {k}");
            if let Some(ord) = found {
                assert_eq!(keys[ord as usize], k);
            }
        }
        // Hint resumption: locate a missing key, then fill its slot and
        // re-probe from the hint — must find the new entry or a vacant
        // slot further along, never a stale result.
        let h = key_hash(99_999);
        let TagProbe::Vacant(slot) = table.locate(h, |_| false) else {
            panic!("missing key located as found");
        };
        table.reserve_one(&hashes);
        // reserve_one may have rehashed; re-locate if capacity changed.
        let slot = match table.probe_at(slot, h, |_| false) {
            TagProbe::Vacant(s) => s,
            TagProbe::Found(_) => unreachable!(),
        };
        keys.push(99_999);
        hashes.push(h);
        table.fill(slot, h, (keys.len() - 1) as u32);
        assert!(table.find(h, |ord| keys[ord as usize] == 99_999).is_some());
    }

    #[test]
    fn linear_layout_membership_survives_growth() {
        exercise_layout(TableLayout::Linear);
    }

    #[test]
    fn bucketized_layout_membership_survives_growth() {
        exercise_layout(TableLayout::Bucketized);
    }

    #[test]
    fn cache_lines_are_64_byte_aligned() {
        assert_eq!(std::mem::size_of::<CacheLine>(), 64);
        assert_eq!(std::mem::align_of::<CacheLine>(), 64);
        let t = TagTable::with_layout(TableLayout::Bucketized);
        assert_eq!(t.slot_count(), 0);
        assert_eq!(t.heap_bytes(), 0);
    }
}
