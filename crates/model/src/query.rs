//! Boolean conjunctive queries and unions thereof.
//!
//! The AC⁰ data-complexity procedures of Theorems 6.6 and 7.7 reduce
//! non-uniform chase (non-)termination to the evaluation of a union of
//! Boolean conjunctive queries `Q_Σ` over the input database. Equality
//! requirements between query positions (needed for the linear case, where
//! a disjunct asks for an atom whose arguments realise a given equality
//! pattern `ℓ̄`) are expressed by repeating variables inside the query atom,
//! which the homomorphism search enforces natively.

use std::collections::HashMap;
use std::ops::ControlFlow;

use crate::atom::Atom;
use crate::instance::Instance;
use crate::plan::{MatchPlan, Scratch};
use crate::symbols::VarId;
use crate::term::Term;

/// A conjunctive query `q(x̄) ← α₁ ∧ … ∧ αₖ`, with an optional tuple of
/// *answer variables* `x̄` (empty for Boolean queries). Variables are
/// normalized to a dense id space on construction, and the conjunction is
/// compiled into a [`MatchPlan`] once so that repeated evaluation (e.g.
/// the UCQ termination deciders) reuses the same plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cq {
    atoms: Vec<Atom>,
    var_count: u32,
    answers: Vec<VarId>,
    plan: MatchPlan,
}

impl Cq {
    /// Builds a Boolean CQ from atoms with arbitrary variable ids;
    /// variables are renumbered densely in first-occurrence order.
    /// Constants are allowed and must match exactly during evaluation.
    pub fn new(atoms: Vec<Atom>) -> Cq {
        Cq::with_answers(atoms, &[])
    }

    /// Builds a CQ with answer variables `x̄` (given in the pre-renumbering
    /// id space; every answer variable must occur in the atoms).
    pub fn with_answers(atoms: Vec<Atom>, answer_vars: &[VarId]) -> Cq {
        let mut remap: HashMap<VarId, VarId> = HashMap::new();
        let atoms: Vec<Atom> = atoms
            .iter()
            .map(|a| {
                a.map_terms(|t| match t {
                    Term::Var(v) => {
                        let next = VarId(remap.len() as u32);
                        Term::Var(*remap.entry(v).or_insert(next))
                    }
                    other => other,
                })
            })
            .collect();
        let answers = answer_vars
            .iter()
            .map(|v| *remap.get(v).expect("answer variable occurs in the query"))
            .collect();
        let var_count = remap.len() as u32;
        let plan = MatchPlan::compile_scan(&atoms, var_count);
        Cq {
            atoms,
            var_count,
            answers,
            plan,
        }
    }

    /// The answer variables (dense ids).
    pub fn answer_vars(&self) -> &[VarId] {
        &self.answers
    }

    /// Evaluates the query, returning the set of answer tuples (empty
    /// tuple set vs `{()}` distinguishes false/true for Boolean queries).
    pub fn answers_in(&self, inst: &Instance) -> std::collections::HashSet<Vec<Term>> {
        let mut out = std::collections::HashSet::new();
        self.plan.for_each_hom(inst, &mut Scratch::new(), |b| {
            out.insert(
                self.answers
                    .iter()
                    .map(|v| b[v.index()].expect("query variables are bound"))
                    .collect(),
            );
            ControlFlow::Continue(())
        });
        out
    }

    /// The *certain answers* over a universal model: answer tuples
    /// containing only constants (tuples with labelled nulls are not
    /// certain). This is sound and complete when `inst` is the (finite)
    /// chase of the database — the OBDA use of the paper's results.
    pub fn certain_answers_in(&self, inst: &Instance) -> std::collections::HashSet<Vec<Term>> {
        self.answers_in(inst)
            .into_iter()
            .filter(|tuple| tuple.iter().all(|t| t.is_const()))
            .collect()
    }

    /// The query atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of (dense) variables.
    pub fn var_count(&self) -> u32 {
        self.var_count
    }

    /// The compiled match plan of the conjunction.
    pub fn plan(&self) -> &MatchPlan {
        &self.plan
    }

    /// Boolean evaluation: does `inst ⊨ q`?
    pub fn holds_in(&self, inst: &Instance) -> bool {
        let mut found = false;
        self.plan.for_each_hom(inst, &mut Scratch::new(), |_| {
            found = true;
            ControlFlow::Break(())
        });
        found
    }

    /// Counts the satisfying assignments (used by tests and experiments;
    /// Boolean semantics only needs existence).
    pub fn count_in(&self, inst: &Instance) -> usize {
        let mut n = 0;
        self.plan.for_each_hom(inst, &mut Scratch::new(), |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    }
}

/// A union of Boolean conjunctive queries `q₁ ∨ … ∨ qₘ`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ucq {
    disjuncts: Vec<Cq>,
}

impl Ucq {
    /// Creates a UCQ from disjuncts.
    pub fn new(disjuncts: Vec<Cq>) -> Ucq {
        Ucq { disjuncts }
    }

    /// Adds a disjunct.
    pub fn push(&mut self, cq: Cq) {
        self.disjuncts.push(cq);
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[Cq] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Is the union empty (equivalent to `false`)?
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Boolean evaluation: does `inst ⊨ Q` (some disjunct holds)?
    pub fn holds_in(&self, inst: &Instance) -> bool {
        self.disjuncts.iter().any(|q| q.holds_in(inst))
    }
}

impl FromIterator<Cq> for Ucq {
    fn from_iter<T: IntoIterator<Item = Cq>>(iter: T) -> Self {
        Ucq::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{ConstId, PredId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    #[test]
    fn single_atom_existence() {
        let inst = Instance::from_atoms(vec![atom(0, vec![c(0), c(1)])]);
        assert!(Cq::new(vec![atom(0, vec![v(7), v(9)])]).holds_in(&inst));
        assert!(!Cq::new(vec![atom(1, vec![v(0)])]).holds_in(&inst));
    }

    #[test]
    fn repeated_variable_encodes_equality_pattern() {
        // Disjunct for equality pattern ℓ̄ = (1,1,2): R(x,x,y).
        let q = Cq::new(vec![atom(0, vec![v(0), v(0), v(1)])]);
        let no = Instance::from_atoms(vec![atom(0, vec![c(0), c(1), c(2)])]);
        assert!(!q.holds_in(&no));
        let yes = Instance::from_atoms(vec![atom(0, vec![c(3), c(3), c(2)])]);
        assert!(q.holds_in(&yes));
    }

    #[test]
    fn conjunction_requires_join() {
        let q = Cq::new(vec![atom(0, vec![v(0), v(1)]), atom(1, vec![v(1)])]);
        let mut inst = Instance::from_atoms(vec![atom(0, vec![c(0), c(1)])]);
        assert!(!q.holds_in(&inst));
        inst.insert(atom(1, vec![c(1)]));
        assert!(q.holds_in(&inst));
        assert_eq!(q.count_in(&inst), 1);
    }

    #[test]
    fn ucq_is_disjunction() {
        let q = Ucq::new(vec![
            Cq::new(vec![atom(0, vec![v(0)])]),
            Cq::new(vec![atom(1, vec![v(0)])]),
        ]);
        assert!(!q.holds_in(&Instance::new()));
        assert!(q.holds_in(&Instance::from_atoms(vec![atom(1, vec![c(0)])])));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert!(Ucq::default().is_empty());
    }

    #[test]
    fn cq_normalizes_variables() {
        let q = Cq::new(vec![atom(0, vec![v(40), v(41), v(40)])]);
        assert_eq!(q.var_count(), 2);
        assert_eq!(q.atoms()[0], atom(0, vec![v(0), v(1), v(0)]));
    }
}
