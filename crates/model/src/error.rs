//! Error types for the model layer.

use std::fmt;

/// Errors produced while building or parsing programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// Arity already registered for the predicate.
        have: usize,
        /// Arity of the offending occurrence.
        got: usize,
    },
    /// A parse error with source location.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A TGD failed a structural validity check (e.g. empty body/head, a
    /// constant inside a rule, or a head using a variable that is neither
    /// frontier nor existential).
    InvalidTgd {
        /// Human-readable description.
        msg: String,
    },
    /// An operation required a class of TGDs (linear, guarded, ...) that
    /// the input does not belong to.
    WrongClass {
        /// What was required.
        required: &'static str,
        /// Description of the violating rule.
        rule: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ArityMismatch { pred, have, got } => write!(
                f,
                "predicate `{pred}` used with arity {got} but was declared with arity {have}"
            ),
            ModelError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            ModelError::InvalidTgd { msg } => write!(f, "invalid TGD: {msg}"),
            ModelError::WrongClass { required, rule } => {
                write!(f, "rule `{rule}` is not {required}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::ArityMismatch {
            pred: "R".into(),
            have: 2,
            got: 3,
        };
        let s = e.to_string();
        assert!(s.contains("R") && s.contains('2') && s.contains('3'));

        let e = ModelError::Parse {
            line: 4,
            col: 7,
            msg: "unexpected `)`".into(),
        };
        assert!(e.to_string().contains("4:7"));
    }
}
