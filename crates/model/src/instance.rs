//! Instances: indexed, deduplicated sets of ground atoms.
//!
//! An [`Instance`] is the paper's *instance over a schema* — a set of atoms
//! with constants and nulls. A *database* is an instance containing only
//! facts (constants). Instances here are append-only (the chase only ever
//! adds atoms), keep insertion order (so a chase derivation's rounds map to
//! contiguous index ranges, enabling semi-naive evaluation), and maintain
//! two indexes:
//!
//! * `by_pred`: predicate → atom indexes, the base relation scan;
//! * `by_pred_term`: `(predicate, term)` → atom indexes, used by the
//!   homomorphism search to narrow candidates once any variable of a
//!   pattern atom is bound.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use crate::atom::Atom;
use crate::symbols::PredId;
use crate::term::Term;

/// Index of an atom within an [`Instance`] (insertion order).
pub type AtomIdx = u32;

/// An indexed, deduplicated, append-only set of ground atoms.
#[derive(Debug, Default, Clone)]
pub struct Instance {
    atoms: Vec<Atom>,
    seen: HashMap<Atom, AtomIdx>,
    by_pred: HashMap<PredId, Vec<AtomIdx>>,
    by_pred_term: HashMap<(PredId, Term), Vec<AtomIdx>>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an instance from an iterator of atoms, deduplicating.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Self {
        let mut inst = Self::new();
        for a in atoms {
            inst.insert(a);
        }
        inst
    }

    /// Inserts an atom; returns `Some(index)` if the atom was new, `None`
    /// if it was already present.
    ///
    /// # Panics
    /// Debug-asserts that the atom is ground: instances never hold
    /// variables.
    pub fn insert(&mut self, atom: Atom) -> Option<AtomIdx> {
        debug_assert!(atom.is_ground(), "instances hold ground atoms only");
        match self.seen.entry(atom) {
            Entry::Occupied(_) => None,
            Entry::Vacant(e) => {
                let idx = self.atoms.len() as AtomIdx;
                let atom = e.key().clone();
                e.insert(idx);
                self.by_pred.entry(atom.pred).or_default().push(idx);
                // Index each *distinct* term once per atom.
                let mut indexed: Vec<Term> = Vec::with_capacity(atom.args.len());
                for &t in atom.args.iter() {
                    if !indexed.contains(&t) {
                        indexed.push(t);
                        self.by_pred_term.entry((atom.pred, t)).or_default().push(idx);
                    }
                }
                self.atoms.push(atom);
                Some(idx)
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.seen.contains_key(atom)
    }

    /// The index of an atom, if present.
    pub fn index_of(&self, atom: &Atom) -> Option<AtomIdx> {
        self.seen.get(atom).copied()
    }

    /// Number of atoms. This is the paper's `|I|` (cardinality).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The atom at a given index.
    #[inline]
    pub fn atom(&self, idx: AtomIdx) -> &Atom {
        &self.atoms[idx as usize]
    }

    /// Iterates over all atoms in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Atom> {
        self.atoms.iter()
    }

    /// Iterates over the atoms in an index range (used for chase deltas).
    pub fn iter_range(&self, from: AtomIdx, to: AtomIdx) -> impl Iterator<Item = &Atom> {
        self.atoms[from as usize..to as usize].iter()
    }

    /// Indexes of atoms with the given predicate.
    pub fn atoms_with_pred(&self, pred: PredId) -> &[AtomIdx] {
        self.by_pred.get(&pred).map_or(&[], Vec::as_slice)
    }

    /// Indexes of atoms with the given predicate that mention the given
    /// term in any position.
    pub fn atoms_with_pred_term(&self, pred: PredId, term: Term) -> &[AtomIdx] {
        self.by_pred_term
            .get(&(pred, term))
            .map_or(&[], Vec::as_slice)
    }

    /// The predicates occurring in the instance, deduplicated, in no
    /// particular order.
    pub fn preds(&self) -> Vec<PredId> {
        self.by_pred
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&p, _)| p)
            .collect()
    }

    /// `dom(I)`: the active domain, i.e. all distinct ground terms, in
    /// first-occurrence order.
    pub fn dom(&self) -> Vec<Term> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for atom in &self.atoms {
            for &t in atom.args.iter() {
                if seen.insert(t) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Does the instance consist solely of facts (a *database*)?
    pub fn is_database(&self) -> bool {
        self.atoms.iter().all(Atom::is_fact)
    }

    /// Returns the atoms as a sorted vector — a canonical form useful for
    /// comparing instances irrespective of insertion order.
    pub fn sorted_atoms(&self) -> Vec<Atom> {
        let mut v = self.atoms.clone();
        v.sort();
        v
    }

    /// Set-equality with another instance (order-independent).
    pub fn set_eq(&self, other: &Instance) -> bool {
        self.len() == other.len() && self.iter().all(|a| other.contains(a))
    }
}

impl FromIterator<Atom> for Instance {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> Self {
        Instance::from_atoms(iter)
    }
}

impl<'a> IntoIterator for &'a Instance {
    type Item = &'a Atom;
    type IntoIter = std::slice::Iter<'a, Atom>;
    fn into_iter(self) -> Self::IntoIter {
        self.atoms.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{ConstId, NullId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    #[test]
    fn insert_deduplicates() {
        let mut inst = Instance::new();
        assert_eq!(inst.insert(atom(0, vec![c(0), c(1)])), Some(0));
        assert_eq!(inst.insert(atom(0, vec![c(0), c(1)])), None);
        assert_eq!(inst.insert(atom(0, vec![c(1), c(0)])), Some(1));
        assert_eq!(inst.len(), 2);
        assert!(inst.contains(&atom(0, vec![c(0), c(1)])));
    }

    #[test]
    fn indexes_track_insertions() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(1, vec![c(0)]));
        inst.insert(atom(0, vec![c(2), c(0)]));
        assert_eq!(inst.atoms_with_pred(PredId(0)), &[0, 2]);
        assert_eq!(inst.atoms_with_pred(PredId(1)), &[1]);
        assert_eq!(inst.atoms_with_pred(PredId(9)), &[] as &[AtomIdx]);
        assert_eq!(inst.atoms_with_pred_term(PredId(0), c(0)), &[0, 2]);
        assert_eq!(inst.atoms_with_pred_term(PredId(0), c(2)), &[2]);
    }

    #[test]
    fn repeated_term_indexed_once_per_atom() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(0), c(0)]));
        assert_eq!(inst.atoms_with_pred_term(PredId(0), c(0)), &[0]);
    }

    #[test]
    fn dom_and_database_checks() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        assert!(inst.is_database());
        inst.insert(atom(0, vec![c(1), n(0)]));
        assert!(!inst.is_database());
        assert_eq!(inst.dom(), vec![c(0), c(1), n(0)]);
    }

    #[test]
    fn set_eq_ignores_order() {
        let a = Instance::from_atoms(vec![atom(0, vec![c(0)]), atom(1, vec![c(1)])]);
        let b = Instance::from_atoms(vec![atom(1, vec![c(1)]), atom(0, vec![c(0)])]);
        assert!(a.set_eq(&b));
        let c_ = Instance::from_atoms(vec![atom(1, vec![c(1)])]);
        assert!(!a.set_eq(&c_));
    }

    #[test]
    fn iter_range_gives_delta() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0)]));
        inst.insert(atom(0, vec![c(1)]));
        inst.insert(atom(0, vec![c(2)]));
        let delta: Vec<_> = inst.iter_range(1, 3).cloned().collect();
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0], atom(0, vec![c(1)]));
    }
}
