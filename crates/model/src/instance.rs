//! Instances: indexed, deduplicated, arena-backed sets of ground atoms.
//!
//! An [`Instance`] is the paper's *instance over a schema* — a set of atoms
//! with constants and nulls. A *database* is an instance containing only
//! facts (constants). Instances are append-only (the chase only ever adds
//! atoms) and keep insertion order, so a chase derivation's rounds map to
//! contiguous index ranges, enabling semi-naive evaluation.
//!
//! # Data layout
//!
//! The chase hot loop reads, hashes, and inserts atoms millions of times,
//! so the layout is optimized for that:
//!
//! * **Argument arena.** All argument tuples live in one flat `Vec<Term>`
//!   pool; an atom is a `(pred, offset-range)` view ([`AtomRef`]). No
//!   per-atom `Box`, and scans touch contiguous memory.
//! * **Single-copy dedup.** A private open-addressing table maps atom
//!   hashes to indexes; insertion hashes the candidate tuple *in place*
//!   (before copying anything) and appends to the pool only when new.
//!   Duplicate inserts — the overwhelming majority late in a chase —
//!   allocate nothing.
//! * **Dense two-level index.** `by_pred[pred]` holds the per-predicate
//!   posting list plus a *position-aware* term-bucket map
//!   (`(position, term) → posting list`) used by the homomorphism search
//!   to narrow candidates once any variable of a pattern atom is bound.
//!   Keying on the argument position keeps a join like transitive
//!   closure from scanning candidates that mention the bound term only
//!   in the wrong argument slot (an any-position list mixes both slots
//!   and roughly doubles the candidate work). Indexed by dense `PredId`,
//!   not by hashed tuple keys.
//!
//! Posting lists are ascending in atom index, which lets the semi-naive
//! search split them into old/delta regions with one binary search.

use std::ops::Deref;

use crate::atom::{Atom, AtomRef};
use crate::hash::{hash_atom, FxHashMap, FxHashSet, TagProbe, TagTable};
use crate::symbols::PredId;
use crate::term::Term;

/// Index of an atom within an [`Instance`] (insertion order).
pub type AtomIdx = u32;

/// How many atom indexes a term posting list stores inline before
/// spilling to the heap. Most terms of a chase instance occur in only a
/// couple of atoms (fresh nulls especially), so inlining removes a heap
/// allocation per new term.
const POSTING_INLINE: usize = 2;

/// A posting list with small-size inline storage.
#[derive(Debug, Default, Clone)]
struct Postings {
    len: u32,
    inline: [AtomIdx; POSTING_INLINE],
    spill: Vec<AtomIdx>,
}

impl Postings {
    fn push(&mut self, idx: AtomIdx) {
        let n = self.len as usize;
        if n < POSTING_INLINE {
            self.inline[n] = idx;
        } else {
            if n == POSTING_INLINE {
                self.spill.reserve(POSTING_INLINE * 4);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(idx);
        }
        self.len += 1;
    }

    fn as_slice(&self) -> &[AtomIdx] {
        let n = self.len as usize;
        if n <= POSTING_INLINE {
            &self.inline[..n]
        } else {
            &self.spill
        }
    }
}

/// Per-predicate posting lists: all atoms of the predicate, plus one list
/// per `(argument position, term)` pair occurring in them.
#[derive(Debug, Default, Clone)]
struct PredIndex {
    all: Vec<AtomIdx>,
    /// Arity of the predicate (fixed by the schema), recorded on first
    /// insert so any-position queries can sweep the positions.
    arity: u32,
    by_pos_term: FxHashMap<(u32, Term), Postings>,
}

/// An indexed, deduplicated, append-only set of ground atoms, stored in an
/// arena layout (flat argument pool + `(pred, range)` views).
#[derive(Debug, Default, Clone)]
pub struct Instance {
    /// Predicate of atom `i`.
    preds: Vec<PredId>,
    /// `offsets[i]..offsets[i+1]` is atom `i`'s argument range in `pool`.
    offsets: Vec<u32>,
    /// The flat argument pool.
    pool: Vec<Term>,
    /// Hash of atom `i` (memoized for dedup probing and table growth).
    hashes: Vec<u64>,
    /// Dedup table over all atoms.
    table: TagTable,
    /// Dense per-predicate index.
    by_pred: Vec<PredIndex>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an instance from an iterator of atoms, deduplicating.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Self {
        let mut inst = Self::new();
        for a in atoms {
            inst.insert(a);
        }
        inst
    }

    /// Inserts an atom; returns `Some(index)` if the atom was new, `None`
    /// if it was already present.
    pub fn insert(&mut self, atom: Atom) -> Option<AtomIdx> {
        self.insert_terms(atom.pred, &atom.args)
    }

    /// Inserts an atom given as a predicate plus argument slice — the
    /// zero-copy path used by the chase (`args` is typically a reused
    /// scratch buffer). Returns `Some(index)` if new, `None` if present.
    ///
    /// # Panics
    /// Debug-asserts that the arguments are ground: instances never hold
    /// variables.
    pub fn insert_terms(&mut self, pred: PredId, args: &[Term]) -> Option<AtomIdx> {
        debug_assert!(
            args.iter().all(|t| t.is_ground()),
            "instances hold ground atoms only"
        );
        let hash = hash_atom(pred, args);
        // Grow first so the vacant slot found by the probe stays valid.
        self.table.reserve_one(&self.hashes);
        let vacant = {
            let (preds, offsets, pool) = (&self.preds, &self.offsets, &self.pool);
            match self.table.probe(hash, |idx| {
                let i = idx as usize;
                preds[i] == pred && &pool[offsets[i] as usize..offsets[i + 1] as usize] == args
            }) {
                TagProbe::Found(_) => return None,
                TagProbe::Vacant(slot) => slot,
            }
        };
        let idx = self.preds.len() as AtomIdx;
        self.pool.extend_from_slice(args);
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.offsets.push(self.pool.len() as u32);
        self.preds.push(pred);
        self.hashes.push(hash);
        self.table.fill(vacant, hash, idx);

        if self.by_pred.len() <= pred.index() {
            self.by_pred
                .resize_with(pred.index() + 1, PredIndex::default);
        }
        let pi = &mut self.by_pred[pred.index()];
        pi.all.push(idx);
        pi.arity = args.len() as u32;
        // Index every argument slot: the key carries the position, so a
        // term repeated across positions lands in distinct lists and each
        // `(position, term)` pair occurs at most once per atom.
        for (i, &t) in args.iter().enumerate() {
            pi.by_pos_term.entry((i as u32, t)).or_default().push(idx);
        }
        Some(idx)
    }

    fn find_hashed(&self, pred: PredId, args: &[Term], hash: u64) -> Option<AtomIdx> {
        self.table.find(hash, |idx| {
            let a = self.atom(idx);
            a.pred == pred && a.args == args
        })
    }

    /// Membership test.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.index_of(atom).is_some()
    }

    /// Membership test for a borrowed atom view.
    pub fn contains_ref(&self, atom: AtomRef<'_>) -> bool {
        self.find_hashed(atom.pred, atom.args, hash_atom(atom.pred, atom.args))
            .is_some()
    }

    /// The index of an atom, if present.
    pub fn index_of(&self, atom: &Atom) -> Option<AtomIdx> {
        self.find_hashed(atom.pred, &atom.args, hash_atom(atom.pred, &atom.args))
    }

    /// The index of an atom given as predicate + argument slice, if
    /// present (allocation-free variant of [`Instance::index_of`]).
    pub fn index_of_terms(&self, pred: PredId, args: &[Term]) -> Option<AtomIdx> {
        self.find_hashed(pred, args, hash_atom(pred, args))
    }

    /// Number of atoms. This is the paper's `|I|` (cardinality).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The atom at a given index, as a borrowed view into the arena.
    #[inline]
    pub fn atom(&self, idx: AtomIdx) -> AtomRef<'_> {
        let i = idx as usize;
        AtomRef {
            pred: self.preds[i],
            args: &self.pool[self.offsets[i] as usize..self.offsets[i + 1] as usize],
        }
    }

    /// Iterates over all atoms in insertion order.
    pub fn iter(&self) -> AtomIter<'_> {
        AtomIter {
            inst: self,
            next: 0,
            end: self.len() as AtomIdx,
        }
    }

    /// Iterates over the atoms in an index range (used for chase deltas).
    pub fn iter_range(&self, from: AtomIdx, to: AtomIdx) -> AtomIter<'_> {
        assert!(from <= to && to as usize <= self.len());
        AtomIter {
            inst: self,
            next: from,
            end: to,
        }
    }

    /// Indexes of atoms with the given predicate (ascending).
    pub fn atoms_with_pred(&self, pred: PredId) -> &[AtomIdx] {
        self.by_pred
            .get(pred.index())
            .map_or(&[], |pi| pi.all.as_slice())
    }

    /// Indexes of atoms with the given predicate that carry the given
    /// term at the given argument position (ascending). This is the
    /// position-aware posting list the homomorphism search probes; for
    /// any-position queries sweep `0..arity_of(pred)`.
    pub fn atoms_with_pred_term_at(&self, pred: PredId, position: u32, term: Term) -> &[AtomIdx] {
        self.by_pred
            .get(pred.index())
            .and_then(|pi| pi.by_pos_term.get(&(position, term)))
            .map_or(&[], Postings::as_slice)
    }

    /// The arity of a predicate as observed in the instance (0 if the
    /// predicate does not occur — 0-ary predicates and absent ones
    /// coincide, which is exactly what position sweeps need).
    pub fn arity_of(&self, pred: PredId) -> u32 {
        self.by_pred.get(pred.index()).map_or(0, |pi| pi.arity)
    }

    /// The predicate of the atom at `idx` (cheaper than materializing the
    /// full [`AtomRef`] when only the predicate is needed).
    #[inline]
    pub fn pred_of(&self, idx: AtomIdx) -> PredId {
        self.preds[idx as usize]
    }

    /// The predicates occurring in the instance, deduplicated, in no
    /// particular order.
    pub fn preds(&self) -> Vec<PredId> {
        self.by_pred
            .iter()
            .enumerate()
            .filter(|(_, pi)| !pi.all.is_empty())
            .map(|(i, _)| PredId(i as u32))
            .collect()
    }

    /// `dom(I)`: the active domain, i.e. all distinct ground terms, in
    /// first-occurrence order.
    pub fn dom(&self) -> Vec<Term> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for &t in &self.pool {
            if seen.insert(t) {
                out.push(t);
            }
        }
        out
    }

    /// Does the instance consist solely of facts (a *database*)?
    pub fn is_database(&self) -> bool {
        self.pool.iter().all(|t| t.is_const())
    }

    /// Returns the atoms as a sorted vector of owned atoms — a canonical
    /// form useful for comparing instances irrespective of insertion
    /// order.
    pub fn sorted_atoms(&self) -> Vec<Atom> {
        let mut v: Vec<Atom> = self.iter().map(|a| a.to_atom()).collect();
        v.sort();
        v
    }

    /// Set-equality with another instance (order-independent).
    pub fn set_eq(&self, other: &Instance) -> bool {
        self.len() == other.len() && self.iter().all(|a| other.contains_ref(a))
    }

    /// Index-and-order equality with another instance: atom `i` of `self`
    /// equals atom `i` of `other` for every `i`. Stronger than
    /// [`Instance::set_eq`]; used by the parallel-vs-sequential
    /// differential suites, where the executors must agree on atom *ids*,
    /// not just the atom set.
    pub fn indexed_eq(&self, other: &Instance) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .zip(other.iter())
                .all(|(a, b)| a.pred == b.pred && a.args == b.args)
    }

    /// A read-only snapshot view for a parallel enumeration phase.
    ///
    /// The enumerate phase of a chase round never mutates the instance,
    /// so sharing it across worker threads is sound; this wrapper makes
    /// the contract explicit in the type (and is statically asserted
    /// `Send + Sync` below — the instance holds no interior mutability).
    pub fn snapshot(&self) -> Snapshot<'_> {
        Snapshot { inst: self }
    }
}

/// A read-only, `Send + Sync` view of an [`Instance`] frozen for the
/// duration of a parallel trigger-enumeration phase. Dereferences to the
/// instance, so every read API (match plans included) works on it
/// directly.
#[derive(Clone, Copy, Debug)]
pub struct Snapshot<'a> {
    inst: &'a Instance,
}

impl Deref for Snapshot<'_> {
    type Target = Instance;

    fn deref(&self) -> &Instance {
        self.inst
    }
}

// The whole point of `Snapshot`: a frozen instance view may cross thread
// boundaries. `Instance` is plain owned data (no `Rc`, no cells), so the
// compiler derives these — the assertion pins the property against
// accidental regressions (e.g. someone caching lookups in a `RefCell`).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot<'static>>();
    assert_send_sync::<Instance>();
};

/// Iterator over the atoms of an [`Instance`], yielding borrowed views.
#[derive(Clone)]
pub struct AtomIter<'a> {
    inst: &'a Instance,
    next: AtomIdx,
    end: AtomIdx,
}

impl<'a> Iterator for AtomIter<'a> {
    type Item = AtomRef<'a>;

    fn next(&mut self) -> Option<AtomRef<'a>> {
        if self.next >= self.end {
            return None;
        }
        let a = self.inst.atom(self.next);
        self.next += 1;
        Some(a)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AtomIter<'_> {}

impl FromIterator<Atom> for Instance {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> Self {
        Instance::from_atoms(iter)
    }
}

impl<'a> IntoIterator for &'a Instance {
    type Item = AtomRef<'a>;
    type IntoIter = AtomIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{ConstId, NullId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    #[test]
    fn insert_deduplicates() {
        let mut inst = Instance::new();
        assert_eq!(inst.insert(atom(0, vec![c(0), c(1)])), Some(0));
        assert_eq!(inst.insert(atom(0, vec![c(0), c(1)])), None);
        assert_eq!(inst.insert(atom(0, vec![c(1), c(0)])), Some(1));
        assert_eq!(inst.len(), 2);
        assert!(inst.contains(&atom(0, vec![c(0), c(1)])));
        assert_eq!(inst.index_of(&atom(0, vec![c(1), c(0)])), Some(1));
        assert_eq!(inst.index_of(&atom(0, vec![c(1), c(1)])), None);
    }

    #[test]
    fn insert_terms_matches_insert() {
        let mut inst = Instance::new();
        assert_eq!(inst.insert_terms(PredId(0), &[c(0), c(1)]), Some(0));
        assert_eq!(inst.insert_terms(PredId(0), &[c(0), c(1)]), None);
        assert_eq!(inst.insert(atom(0, vec![c(0), c(1)])), None);
        assert_eq!(inst.index_of_terms(PredId(0), &[c(0), c(1)]), Some(0));
    }

    #[test]
    fn dedup_survives_table_growth() {
        let mut inst = Instance::new();
        for i in 0..1000 {
            assert!(inst.insert(atom(0, vec![c(i), c(i + 1)])).is_some());
        }
        for i in 0..1000 {
            assert!(inst.insert(atom(0, vec![c(i), c(i + 1)])).is_none());
            assert!(inst.contains(&atom(0, vec![c(i), c(i + 1)])));
        }
        assert_eq!(inst.len(), 1000);
    }

    #[test]
    fn atom_views_read_the_arena() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(1, vec![c(2)]));
        let a = inst.atom(0);
        assert_eq!(a.pred, PredId(0));
        assert_eq!(a.args, &[c(0), c(1)]);
        assert_eq!(inst.atom(1).args, &[c(2)]);
        assert_eq!(a.to_atom(), atom(0, vec![c(0), c(1)]));
    }

    #[test]
    fn indexes_track_insertions() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(1, vec![c(0)]));
        inst.insert(atom(0, vec![c(2), c(0)]));
        assert_eq!(inst.atoms_with_pred(PredId(0)), &[0, 2]);
        assert_eq!(inst.atoms_with_pred(PredId(1)), &[1]);
        assert_eq!(inst.atoms_with_pred(PredId(9)), &[] as &[AtomIdx]);
        // Position-aware lists: c(0) occurs at position 0 of atom 0 and
        // at position 1 of atom 2 — distinct lists.
        assert_eq!(inst.atoms_with_pred_term_at(PredId(0), 0, c(0)), &[0]);
        assert_eq!(inst.atoms_with_pred_term_at(PredId(0), 1, c(0)), &[2]);
        assert_eq!(inst.atoms_with_pred_term_at(PredId(0), 0, c(2)), &[2]);
        assert_eq!(
            inst.atoms_with_pred_term_at(PredId(0), 1, c(2)),
            &[] as &[AtomIdx]
        );
        assert_eq!(inst.arity_of(PredId(0)), 2);
        assert_eq!(inst.arity_of(PredId(1)), 1);
        assert_eq!(inst.arity_of(PredId(9)), 0);
    }

    #[test]
    fn repeated_term_indexed_once_per_position() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(0), c(0)]));
        for pos in 0..3 {
            assert_eq!(inst.atoms_with_pred_term_at(PredId(0), pos, c(0)), &[0]);
        }
    }

    #[test]
    fn snapshot_reads_like_the_instance() {
        let inst = Instance::from_atoms(vec![atom(0, vec![c(0), c(1)])]);
        let snap = inst.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.atom(0).args, &[c(0), c(1)]);
        assert_eq!(snap.atoms_with_pred_term_at(PredId(0), 1, c(1)), &[0]);
    }

    #[test]
    fn indexed_eq_requires_identical_order() {
        let a = Instance::from_atoms(vec![atom(0, vec![c(0)]), atom(1, vec![c(1)])]);
        let b = Instance::from_atoms(vec![atom(1, vec![c(1)]), atom(0, vec![c(0)])]);
        assert!(a.set_eq(&b));
        assert!(!a.indexed_eq(&b));
        assert!(a.indexed_eq(&a.clone()));
    }

    #[test]
    fn dom_and_database_checks() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        assert!(inst.is_database());
        inst.insert(atom(0, vec![c(1), n(0)]));
        assert!(!inst.is_database());
        assert_eq!(inst.dom(), vec![c(0), c(1), n(0)]);
    }

    #[test]
    fn set_eq_ignores_order() {
        let a = Instance::from_atoms(vec![atom(0, vec![c(0)]), atom(1, vec![c(1)])]);
        let b = Instance::from_atoms(vec![atom(1, vec![c(1)]), atom(0, vec![c(0)])]);
        assert!(a.set_eq(&b));
        let c_ = Instance::from_atoms(vec![atom(1, vec![c(1)])]);
        assert!(!a.set_eq(&c_));
    }

    #[test]
    fn iter_range_gives_delta() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0)]));
        inst.insert(atom(0, vec![c(1)]));
        inst.insert(atom(0, vec![c(2)]));
        let delta: Vec<Atom> = inst.iter_range(1, 3).map(|a| a.to_atom()).collect();
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0], atom(0, vec![c(1)]));
    }

    #[test]
    fn zero_arity_atoms_are_supported() {
        let mut inst = Instance::new();
        assert_eq!(inst.insert(atom(0, vec![])), Some(0));
        assert_eq!(inst.insert(atom(0, vec![])), None);
        assert_eq!(inst.insert(atom(1, vec![])), Some(1));
        assert_eq!(inst.atom(0).args.len(), 0);
        assert_eq!(inst.atoms_with_pred(PredId(0)), &[0]);
    }
}
