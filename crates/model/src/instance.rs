//! Instances: indexed, deduplicated, arena-backed sets of ground atoms.
//!
//! An [`Instance`] is the paper's *instance over a schema* — a set of atoms
//! with constants and nulls. A *database* is an instance containing only
//! facts (constants). Instances are append-only (the chase only ever adds
//! atoms) and keep insertion order, so a chase derivation's rounds map to
//! contiguous index ranges, enabling semi-naive evaluation.
//!
//! # Data layout
//!
//! The chase hot loop reads, hashes, and inserts atoms millions of times,
//! so the layout is optimized for that:
//!
//! * **Argument arena.** All argument tuples live in one flat `Vec<Term>`
//!   pool; an atom is a `(pred, offset-range)` view ([`AtomRef`]). No
//!   per-atom `Box`, and scans touch contiguous memory.
//! * **Single-copy dedup.** A private open-addressing table maps atom
//!   hashes to indexes; insertion hashes the candidate tuple *in place*
//!   (before copying anything) and appends to the pool only when new.
//!   Duplicate inserts — the overwhelming majority late in a chase —
//!   allocate nothing.
//! * **Dense two-level index.** `by_pred[pred]` holds the per-predicate
//!   posting list plus *position-aware* term postings
//!   (`(position, term) → posting list`) used by the homomorphism search
//!   to narrow candidates once any variable of a pattern atom is bound.
//!   Keying on the argument position keeps a join like transitive
//!   closure from scanning candidates that mention the bound term only
//!   in the wrong argument slot (an any-position list mixes both slots
//!   and roughly doubles the candidate work). Term postings live in
//!   **dense lanes** per `(position, term kind)` — indexed by the
//!   term's interned id, not hashed — with a hash-map overflow for
//!   sparse id windows (`DenseLane`); the common posting update (the
//!   hottest serial work in the chase commit loop) is a vector index.
//!
//! Posting lists are ascending in atom index, which lets the semi-naive
//! search split them into old/delta regions with one binary search.
//!
//! The chase commit loop drives the batch-append surface:
//! [`Instance::locate_terms_hashed`] (snapshot containment probe that
//! yields a resumable [`ProbeHint`] on a miss),
//! [`Instance::insert_terms_hashed`] (hinted append, eager indexing),
//! and [`Instance::extend_terms`]/[`Instance::extend_terms_hinted`] +
//! [`Instance::splice_index`] (hinted append with posting maintenance
//! deferred into an [`IndexDelta`] and spliced once per batch).

use std::ops::Deref;

use crate::atom::{Atom, AtomRef};
use crate::chunk::{ChunkedArena, SpillArena};
use crate::hash::{hash_atom, term_code, FxHashMap, FxHashSet, TagProbe, TagTable};
use crate::symbols::{ConstId, PredId};
use crate::term::Term;

/// Filler for chunk-boundary padding in the term pool. Pads sit in the
/// gaps between atom ranges and are never reachable through an
/// [`AtomRef`] (all iteration is per-atom-range).
const PAD_TERM: Term = Term::Const(ConstId(0));

/// Index of an atom within an [`Instance`] (insertion order).
pub type AtomIdx = u32;

/// How many atom indexes a term posting list stores inline before
/// spilling to the heap. Most terms of a chase instance occur in only a
/// couple of atoms (fresh nulls especially), so inlining removes a heap
/// allocation per new term.
const POSTING_INLINE: usize = 2;

/// A posting list with small-size inline storage, 16 bytes flat: the
/// spill storage lives in a per-predicate arena ([`PredIndex::spills`])
/// referenced by slot, not in an inline `Vec` (24 bytes of pointer
/// baggage per map entry). The posting map's buckets shrink from 48 to
/// 24 bytes, which halves rehash traffic and cache misses in the chase
/// commit loop — the hottest serial code in the system.
#[derive(Debug, Default, Clone)]
struct Postings {
    len: u32,
    inline: [AtomIdx; POSTING_INLINE],
    /// Slot in the owning [`PredIndex::spills`] arena once `len`
    /// exceeds the inline capacity.
    spill: u32,
}

impl Postings {
    fn push(&mut self, idx: AtomIdx, spills: &mut SpillArena<AtomIdx>) {
        let n = self.len as usize;
        if n < POSTING_INLINE {
            self.inline[n] = idx;
        } else if n == POSTING_INLINE {
            let mut seed = [idx; POSTING_INLINE + 1];
            seed[..POSTING_INLINE].copy_from_slice(&self.inline);
            self.spill = spills.alloc(&seed);
        } else {
            spills.push(self.spill, idx);
        }
        self.len += 1;
    }

    fn as_slice<'a>(&'a self, spills: &'a SpillArena<AtomIdx>) -> &'a [AtomIdx] {
        let n = self.len as usize;
        if n <= POSTING_INLINE {
            &self.inline[..n]
        } else {
            spills.list(self.spill)
        }
    }
}

/// A dense posting lane: the posting lists of one argument position and
/// one term *kind* (constants or nulls), indexed by `id - base` instead
/// of hashed. Both id spaces are interned densely and a chase touches
/// them in near-ascending order, so the overwhelmingly common posting
/// update — the hottest serial work in the chase commit loop — becomes
/// a vector index instead of a hash-map probe. Windows that turn out
/// sparse (a predicate touching a few scattered ids) migrate to the
/// [`PredIndex::by_pos_term`] overflow map and disable the lane, so
/// memory stays within a small factor of the entries actually stored.
#[derive(Debug, Default, Clone)]
struct DenseLane {
    /// First id of the window (valid once `posts` is nonempty).
    base: u32,
    /// Posting lists for ids `base ..= base + posts.len() - 1`.
    posts: Vec<Postings>,
    /// Occupied window slots (occupancy guard input).
    used: u32,
    /// Sparse windows migrate to the overflow map and disable the lane.
    disabled: bool,
}

/// A sparse window wider than this (and under-occupied ×4) migrates to
/// the overflow map.
const LANE_SPARSE_MIN: usize = 1024;

/// A lane rebases in place (prepending empty slots) for ids up to this
/// far below its window; anything farther disables it instead.
const LANE_REBASE_MAX: u32 = 1024;

impl DenseLane {
    #[inline]
    fn slice<'a>(&'a self, id: u32, spills: &'a SpillArena<AtomIdx>) -> &'a [AtomIdx] {
        if id < self.base {
            return &[];
        }
        self.posts
            .get((id - self.base) as usize)
            .map(|p| p.as_slice(spills))
            .unwrap_or(&[])
    }
}

/// Per-predicate posting lists: all atoms of the predicate, plus one list
/// per `(argument position, term)` pair occurring in them — dense lanes
/// per `(position, term kind)` with a hash-map overflow.
#[derive(Debug, Default, Clone)]
struct PredIndex {
    all: Vec<AtomIdx>,
    /// Arity of the predicate (fixed by the schema), recorded on first
    /// insert so any-position queries can sweep the positions.
    arity: u32,
    /// `lanes[2 * position + kind]`, kind 0 = constants, 1 = nulls.
    lanes: Vec<DenseLane>,
    /// Overflow: disabled lanes' entries, keyed by [`pos_term_key`] —
    /// one packed word, so the map hashes and compares a single `u64`.
    by_pos_term: FxHashMap<u64, Postings>,
    /// Spill arena for posting lists that outgrow their inline slots
    /// (shared by lanes and overflow) — chunk-backed, so it can follow
    /// the term pool out of core under `NUCHASE_INSTANCE_SPILL_DIR`.
    spills: SpillArena<AtomIdx>,
}

/// The `(kind, id)` coordinates of a ground term in the lane space.
#[inline]
fn lane_coords(t: Term) -> (usize, u32) {
    match t {
        Term::Const(c) => (0, c.0),
        Term::Null(n) => (1, n.0),
        Term::Var(_) => unreachable!("instances hold ground atoms only"),
    }
}

/// How an append maintains the per-predicate posting lists: inline
/// (small batches — the atom's data is hot) or deferred into an
/// [`IndexDelta`] for one batched [`Instance::splice_index`] pass.
enum AppendIndexing<'a> {
    Eager,
    Defer(&'a mut IndexDelta),
}

/// Posting-list maintenance for one appended atom — shared verbatim by
/// the eager path and the deferred splice, so the index cannot diverge
/// between them.
fn index_atom(by_pred: &mut Vec<PredIndex>, idx: AtomIdx, pred: PredId, args: &[Term]) {
    if by_pred.len() <= pred.index() {
        by_pred.resize_with(pred.index() + 1, PredIndex::default);
    }
    let pi = &mut by_pred[pred.index()];
    pi.all.push(idx);
    pi.arity = args.len() as u32;
    if pi.lanes.len() < 2 * args.len() {
        pi.lanes.resize_with(2 * args.len(), DenseLane::default);
    }
    // Index every argument slot: each `(position, term)` pair occurs at
    // most once per atom, and a term repeated across positions lands in
    // distinct lanes/lists.
    for (i, &t) in args.iter().enumerate() {
        let (kind, id) = lane_coords(t);
        let lane = &mut pi.lanes[2 * i + kind];
        if !lane.disabled {
            lane_push(
                lane,
                i as u32,
                kind,
                id,
                idx,
                &mut pi.by_pos_term,
                &mut pi.spills,
            );
        } else {
            pi.by_pos_term
                .entry(pos_term_key(i as u32, t))
                .or_default()
                .push(idx, &mut pi.spills);
        }
    }
}

/// Appends to a live dense lane, growing or rebasing its window — and
/// migrating the lane to the overflow map when the window goes sparse
/// (the id space the predicate touches at this position is scattered,
/// so dense storage would waste memory). Every entry has exactly one
/// home: the lane while it is live, the map after it is disabled.
fn lane_push(
    lane: &mut DenseLane,
    pos: u32,
    kind: usize,
    id: u32,
    idx: AtomIdx,
    overflow: &mut FxHashMap<u64, Postings>,
    spills: &mut SpillArena<AtomIdx>,
) {
    if lane.posts.is_empty() {
        lane.base = id;
    }
    if id < lane.base {
        // Ids mostly ascend; a dip rebases in place — over-shifting by
        // up to the window size, so a descending run costs one
        // O(window) splice per ~window inserts (amortized O(1)), not
        // per insert. A dip past the rebase bound, or a rebase that
        // would leave the window sparse, migrates to the overflow map
        // instead.
        let dip = lane.base - id;
        let shift = dip
            .max((lane.posts.len() as u32).min(LANE_REBASE_MAX))
            .min(lane.base) as usize;
        let window_after = lane.posts.len() + shift;
        let sparse = window_after > LANE_SPARSE_MIN && (lane.used as usize) * 4 < window_after;
        if dip <= LANE_REBASE_MAX && !sparse {
            lane.posts
                .splice(0..0, std::iter::repeat_with(Postings::default).take(shift));
            lane.base -= shift as u32;
        } else {
            lane_disable(lane, pos, kind, overflow);
            overflow
                .entry(pos_kind_id_key(pos, kind, id))
                .or_default()
                .push(idx, spills);
            return;
        }
    }
    let slot = (id - lane.base) as usize;
    if slot >= lane.posts.len() {
        let window = slot + 1;
        if window > LANE_SPARSE_MIN && (lane.used as usize) * 4 < window {
            lane_disable(lane, pos, kind, overflow);
            overflow
                .entry(pos_kind_id_key(pos, kind, id))
                .or_default()
                .push(idx, spills);
            return;
        }
        lane.posts.resize_with(window, Postings::default);
    }
    let posting = &mut lane.posts[slot];
    if posting.len == 0 {
        lane.used += 1;
    }
    posting.push(idx, spills);
}

/// Migrates a lane's occupied slots into the overflow map and disables
/// it. Observable state is unchanged — only the storage home moves (the
/// spill arena is shared, so spilled lists keep their slots).
fn lane_disable(
    lane: &mut DenseLane,
    pos: u32,
    kind: usize,
    overflow: &mut FxHashMap<u64, Postings>,
) {
    let base = lane.base;
    for (k, posting) in lane.posts.drain(..).enumerate() {
        if posting.len == 0 {
            continue;
        }
        overflow.insert(pos_kind_id_key(pos, kind, base + k as u32), posting);
    }
    lane.used = 0;
    lane.disabled = true;
}

/// Packs an `(argument position, term)` posting key into one word:
/// [`term_code`] is a 34-bit injective code, leaving 30 bits of
/// position — far beyond any real arity.
#[inline]
fn pos_term_key(position: u32, term: Term) -> u64 {
    (u64::from(position) << 34) | term_code(term)
}

/// [`pos_term_key`] from lane coordinates — the same packing
/// ([`term_code`] tags constants `0b00` and nulls `0b01`), asserted in
/// the tests so the two key paths cannot drift apart.
#[inline]
fn pos_kind_id_key(position: u32, kind: usize, id: u32) -> u64 {
    (u64::from(position) << 34) | (u64::from(id) << 2) | kind as u64
}

/// An indexed, deduplicated, append-only set of ground atoms, stored in an
/// arena layout (chunked argument pool + `(pred, range)` views).
#[derive(Debug, Clone)]
pub struct Instance {
    /// Predicate of atom `i`.
    preds: Vec<PredId>,
    /// Global start of atom `i`'s argument range in `pool`.
    starts: Vec<u32>,
    /// Global end (exclusive) of atom `i`'s argument range in `pool`.
    /// Kept separately from `starts` because chunk-boundary padding can
    /// leave a gap between one atom's end and the next one's start.
    ends: Vec<u32>,
    /// The argument pool: chunked so growth never copies stored tuples
    /// and chunks can be file-backed (`NUCHASE_INSTANCE_SPILL_DIR`) for
    /// beyond-RAM instances.
    pool: ChunkedArena<Term>,
    /// Hash of atom `i` (memoized for dedup probing and table growth).
    hashes: Vec<u64>,
    /// Dedup table over all atoms.
    table: TagTable,
    /// Dense per-predicate index.
    by_pred: Vec<PredIndex>,
}

impl Default for Instance {
    fn default() -> Self {
        Instance {
            preds: Vec::new(),
            starts: Vec::new(),
            ends: Vec::new(),
            pool: ChunkedArena::new(PAD_TERM),
            hashes: Vec::new(),
            table: TagTable::default(),
            by_pred: Vec::new(),
        }
    }
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an instance from an iterator of atoms, deduplicating.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Self {
        let mut inst = Self::new();
        for a in atoms {
            inst.insert(a);
        }
        inst
    }

    /// Inserts an atom; returns `Some(index)` if the atom was new, `None`
    /// if it was already present.
    pub fn insert(&mut self, atom: Atom) -> Option<AtomIdx> {
        self.insert_terms(atom.pred, &atom.args)
    }

    /// Inserts an atom given as a predicate plus argument slice — the
    /// zero-copy path used by the chase (`args` is typically a reused
    /// scratch buffer). Returns `Some(index)` if new, `None` if present.
    ///
    /// # Panics
    /// Debug-asserts that the arguments are ground: instances never hold
    /// variables.
    pub fn insert_terms(&mut self, pred: PredId, args: &[Term]) -> Option<AtomIdx> {
        let hash = hash_atom(pred, args);
        self.append_terms(pred, args, hash, None, AppendIndexing::Eager)
    }

    /// [`Instance::insert_terms`] with a caller-computed hash and an
    /// optional probe hint (see [`Instance::locate_terms_hashed`]):
    /// eager index maintenance, one pass. This is the chase commit
    /// loop's small-batch path — for a handful of atoms, interleaving
    /// the posting updates with the append (while predicate and
    /// arguments are hot) beats deferring them.
    pub fn insert_terms_hashed(
        &mut self,
        pred: PredId,
        args: &[Term],
        hash: u64,
        hint: Option<ProbeHint>,
    ) -> Option<AtomIdx> {
        self.append_terms(pred, args, hash, hint, AppendIndexing::Eager)
    }

    /// Appends an atom whose hash the caller has already computed (via
    /// [`crate::hash::hash_atom`]), **deferring posting-list maintenance**
    /// into `delta`: the atom becomes immediately visible to the dedup
    /// table ([`Instance::index_of_terms`], further `extend_terms` calls)
    /// and to positional reads ([`Instance::atom`], [`Instance::iter`]),
    /// but not to the per-predicate posting lists until
    /// [`Instance::splice_index`] runs. This is the chase commit loop's
    /// bulk-append path: a wide round's worth of inserts batches its
    /// index writes into one cache-friendly splice instead of
    /// interleaving hash map updates with appends.
    ///
    /// Returns `Some(index)` if the atom was new, `None` if present.
    ///
    /// # Panics
    /// Debug-asserts that the arguments are ground and that `hash` is the
    /// atom's true hash.
    pub fn extend_terms(
        &mut self,
        pred: PredId,
        args: &[Term],
        hash: u64,
        delta: &mut IndexDelta,
    ) -> Option<AtomIdx> {
        self.append_terms(pred, args, hash, None, AppendIndexing::Defer(delta))
    }

    /// [`Instance::extend_terms`] resuming from a [`ProbeHint`] taken
    /// against an earlier state of this instance (no atoms removed
    /// since — instances are append-only). When the dedup table has not
    /// been rehashed in between, the probe restarts at the hinted slot:
    /// the chain prefix the hint already walked is immutable, so only
    /// same-batch insertions (which land at or after the hint) are
    /// re-examined. A rehash in between falls back to the full probe.
    pub fn extend_terms_hinted(
        &mut self,
        pred: PredId,
        args: &[Term],
        hash: u64,
        hint: ProbeHint,
        delta: &mut IndexDelta,
    ) -> Option<AtomIdx> {
        self.append_terms(pred, args, hash, Some(hint), AppendIndexing::Defer(delta))
    }

    /// The append core behind every insert variant: hinted-or-full dedup
    /// probe, arena append, then eager or deferred posting maintenance.
    fn append_terms(
        &mut self,
        pred: PredId,
        args: &[Term],
        hash: u64,
        hint: Option<ProbeHint>,
        indexing: AppendIndexing<'_>,
    ) -> Option<AtomIdx> {
        debug_assert!(
            args.iter().all(|t| t.is_ground()),
            "instances hold ground atoms only"
        );
        debug_assert_eq!(hash, hash_atom(pred, args), "caller-computed hash");
        // A hint is honored only while the table keeps the capacity it
        // was taken under and this insertion cannot grow it mid-probe;
        // otherwise grow first (so the vacant slot stays valid) and walk
        // the full chain.
        let hinted = hint.filter(|h| {
            self.table.slot_count() as u32 == h.slot_count && !self.table.insert_would_grow()
        });
        if hinted.is_none() {
            self.table.reserve_one(&self.hashes);
        }
        let vacant = {
            let (preds, starts, ends, pool) = (&self.preds, &self.starts, &self.ends, &self.pool);
            let eq = |idx: u32| {
                let i = idx as usize;
                preds[i] == pred && pool.get(starts[i], ends[i] - starts[i]) == args
            };
            let probe = match hinted {
                Some(h) => self.table.probe_at(h.slot as usize, hash, eq),
                None => self.table.probe(hash, eq),
            };
            match probe {
                TagProbe::Found(_) => return None,
                TagProbe::Vacant(slot) => slot,
            }
        };
        let idx = self.preds.len() as AtomIdx;
        let start = self.pool.push_slice(args);
        self.starts.push(start);
        self.ends.push(start + args.len() as u32);
        self.preds.push(pred);
        self.hashes.push(hash);
        self.table.fill(vacant, hash, idx);
        match indexing {
            AppendIndexing::Eager => index_atom(&mut self.by_pred, idx, pred, args),
            AppendIndexing::Defer(delta) => delta.pending.push(idx),
        }
        Some(idx)
    }

    /// Appends an atom the caller has just probed **absent** via
    /// [`Instance::locate_terms_hashed`] against this very instance
    /// state, reusing the returned [`ProbeHint`]: while the hint is
    /// still valid (no rehash since the probe — the recorded capacity
    /// matches — and this insertion does not grow the table) the probe
    /// chain is *not* re-walked; the hinted vacant slot is re-verified
    /// in O(1) and filled directly. A stale hint (an interleaving grow)
    /// falls back to the full probe. Indexing is eager — this is the
    /// fused micro-round insert of the chase, where a round's handful
    /// of atoms is far below any deferred-splice payoff.
    ///
    /// Returns the new atom's index. The atom **must** be absent (that
    /// is what the preceding locate established); inserting a present
    /// atom through this method would duplicate it.
    ///
    /// # Panics
    /// Debug-asserts groundness, the caller-computed hash, and absence.
    pub fn insert_new_terms_hinted(
        &mut self,
        pred: PredId,
        args: &[Term],
        hash: u64,
        hint: ProbeHint,
    ) -> AtomIdx {
        debug_assert!(
            args.iter().all(|t| t.is_ground()),
            "instances hold ground atoms only"
        );
        debug_assert_eq!(hash, hash_atom(pred, args), "caller-computed hash");
        debug_assert!(
            self.find_hashed(pred, args, hash).is_none(),
            "caller located the atom absent"
        );
        let hinted =
            self.table.slot_count() as u32 == hint.slot_count && !self.table.insert_would_grow();
        if !hinted {
            self.table.reserve_one(&self.hashes);
        }
        // The atom is absent, so `eq` can be constant false; the hinted
        // walk re-checks the remembered slot and returns it immediately
        // while it is still vacant.
        let probe = if hinted {
            self.table.probe_at(hint.slot as usize, hash, |_| false)
        } else {
            self.table.probe(hash, |_| false)
        };
        let vacant = match probe {
            TagProbe::Vacant(slot) => slot,
            TagProbe::Found(_) => unreachable!("probe eq is constant false"),
        };
        let idx = self.preds.len() as AtomIdx;
        let start = self.pool.push_slice(args);
        self.starts.push(start);
        self.ends.push(start + args.len() as u32);
        self.preds.push(pred);
        self.hashes.push(hash);
        self.table.fill(vacant, hash, idx);
        index_atom(&mut self.by_pred, idx, pred, args);
        idx
    }

    fn find_hashed(&self, pred: PredId, args: &[Term], hash: u64) -> Option<AtomIdx> {
        self.table.find(hash, |idx| {
            let a = self.atom(idx);
            a.pred == pred && a.args == args
        })
    }

    /// Splices the posting-list updates deferred by
    /// [`Instance::extend_terms`] — one pass over the batch, in ascending
    /// atom order, producing indexes identical to eager
    /// [`Instance::insert_terms`] maintenance. Drains `delta`.
    pub fn splice_index(&mut self, delta: &mut IndexDelta) {
        for idx in delta.pending.drain(..) {
            let i = idx as usize;
            let args = self.pool.get(self.starts[i], self.ends[i] - self.starts[i]);
            index_atom(&mut self.by_pred, idx, self.preds[i], args);
        }
    }

    /// Membership test.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.index_of(atom).is_some()
    }

    /// Membership test for a borrowed atom view.
    pub fn contains_ref(&self, atom: AtomRef<'_>) -> bool {
        self.find_hashed(atom.pred, atom.args, hash_atom(atom.pred, atom.args))
            .is_some()
    }

    /// The index of an atom, if present.
    pub fn index_of(&self, atom: &Atom) -> Option<AtomIdx> {
        self.find_hashed(atom.pred, &atom.args, hash_atom(atom.pred, &atom.args))
    }

    /// The index of an atom given as predicate + argument slice, if
    /// present (allocation-free variant of [`Instance::index_of`]).
    pub fn index_of_terms(&self, pred: PredId, args: &[Term]) -> Option<AtomIdx> {
        self.find_hashed(pred, args, hash_atom(pred, args))
    }

    /// [`Instance::index_of_terms`] with a caller-computed hash (the
    /// resolve stage of the chase hashes each head atom once and reuses
    /// it for the snapshot containment pre-check here and the commit-time
    /// append).
    pub fn index_of_terms_hashed(&self, pred: PredId, args: &[Term], hash: u64) -> Option<AtomIdx> {
        debug_assert_eq!(hash, hash_atom(pred, args), "caller-computed hash");
        self.find_hashed(pred, args, hash)
    }

    /// Containment probe that, on a miss, returns a **probe hint** for a
    /// later [`Instance::extend_terms_hinted`]: the vacant slot the walk
    /// ended at plus the dedup table's capacity at probe time. The chase
    /// resolve stage probes the frozen snapshot with this; the commit
    /// stage then resumes the walk instead of repeating it.
    pub fn locate_terms_hashed(
        &self,
        pred: PredId,
        args: &[Term],
        hash: u64,
    ) -> Result<AtomIdx, ProbeHint> {
        debug_assert_eq!(hash, hash_atom(pred, args), "caller-computed hash");
        let (preds, starts, ends, pool) = (&self.preds, &self.starts, &self.ends, &self.pool);
        match self.table.locate(hash, |idx| {
            let i = idx as usize;
            preds[i] == pred && pool.get(starts[i], ends[i] - starts[i]) == args
        }) {
            TagProbe::Found(idx) => Ok(idx),
            TagProbe::Vacant(slot) => Err(ProbeHint {
                slot: slot as u32,
                slot_count: self.table.slot_count() as u32,
            }),
        }
    }

    /// Number of atoms. This is the paper's `|I|` (cardinality).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Heap bytes held by the atom arena, dedup table, and per-predicate
    /// posting index (capacities, not lengths — what the allocator
    /// actually holds). The instance is append-only, so the value at any
    /// moment is also the peak so far. Memory accounting for
    /// chase telemetry; O(#predicates + #spilled lists), not O(atoms).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.preds.capacity() * size_of::<PredId>()
            + self.starts.capacity() * size_of::<u32>()
            + self.ends.capacity() * size_of::<u32>()
            + self.pool.heap_bytes()
            + self.hashes.capacity() * size_of::<u64>()
            + self.table.heap_bytes()
            + self.by_pred.capacity() * size_of::<PredIndex>();
        for p in &self.by_pred {
            bytes += p.all.capacity() * size_of::<AtomIdx>();
            bytes += p.lanes.capacity() * size_of::<DenseLane>();
            for lane in &p.lanes {
                bytes += lane.posts.capacity() * size_of::<Postings>();
            }
            // Overflow map: buckets are (key, Postings) plus ~1/8 byte
            // of control metadata per bucket; capacity() approximates
            // the bucket count.
            bytes += p.by_pos_term.capacity() * (size_of::<u64>() + size_of::<Postings>() + 1);
            bytes += p.spills.heap_bytes();
        }
        bytes
    }

    /// Bytes of the instance currently held in file-backed chunks (zero
    /// unless `NUCHASE_INSTANCE_SPILL_DIR` is set): resident-set relief,
    /// complementing [`Instance::heap_bytes`].
    pub fn file_bytes(&self) -> usize {
        self.pool.file_bytes()
            + self
                .by_pred
                .iter()
                .map(|p| p.spills.file_bytes())
                .sum::<usize>()
    }

    /// Load factor of the atom dedup table (entries / slots; memory
    /// accounting for chase telemetry).
    pub fn table_load(&self) -> f64 {
        self.table.load_factor()
    }

    /// Number of posting lists that outgrew their inline slots into the
    /// spill arenas (memory accounting for chase telemetry).
    pub fn spill_count(&self) -> usize {
        self.by_pred.iter().map(|p| p.spills.list_count()).sum()
    }

    /// The atom at a given index, as a borrowed view into the arena.
    #[inline]
    pub fn atom(&self, idx: AtomIdx) -> AtomRef<'_> {
        let i = idx as usize;
        AtomRef {
            pred: self.preds[i],
            args: self.pool.get(self.starts[i], self.ends[i] - self.starts[i]),
        }
    }

    /// Prefetches the dedup-table cache line a probe for `hash` will
    /// touch — the batched-probe API's distance-k warm-up for the
    /// snapshot containment checks of the resolve stage. A no-op when
    /// the table was created with the linear (pre-tier) layout, so
    /// `NUCHASE_FORCE_BUCKET_LAYOUT=0` reverts the memory-locality tier
    /// as a faithful baseline.
    #[inline]
    pub fn prefetch_probe(&self, hash: u64) {
        if self.table.layout() == crate::hash::TableLayout::Bucketized {
            self.table.prefetch(hash);
        }
    }

    /// Iterates over all atoms in insertion order.
    pub fn iter(&self) -> AtomIter<'_> {
        AtomIter {
            inst: self,
            next: 0,
            end: self.len() as AtomIdx,
        }
    }

    /// Iterates over the atoms in an index range (used for chase deltas).
    pub fn iter_range(&self, from: AtomIdx, to: AtomIdx) -> AtomIter<'_> {
        assert!(from <= to && to as usize <= self.len());
        AtomIter {
            inst: self,
            next: from,
            end: to,
        }
    }

    /// Indexes of atoms with the given predicate (ascending).
    pub fn atoms_with_pred(&self, pred: PredId) -> &[AtomIdx] {
        self.by_pred
            .get(pred.index())
            .map_or(&[], |pi| pi.all.as_slice())
    }

    /// Indexes of atoms with the given predicate that carry the given
    /// term at the given argument position (ascending). This is the
    /// position-aware posting list the homomorphism search probes; for
    /// any-position queries sweep `0..arity_of(pred)`.
    pub fn atoms_with_pred_term_at(&self, pred: PredId, position: u32, term: Term) -> &[AtomIdx] {
        let Some(pi) = self.by_pred.get(pred.index()) else {
            return &[];
        };
        let (kind, id) = lane_coords(term);
        match pi.lanes.get(2 * position as usize + kind) {
            Some(lane) if !lane.disabled => lane.slice(id, &pi.spills),
            _ => pi
                .by_pos_term
                .get(&pos_term_key(position, term))
                .map(|p| p.as_slice(&pi.spills))
                .unwrap_or(&[]),
        }
    }

    /// The arity of a predicate as observed in the instance (0 if the
    /// predicate does not occur — 0-ary predicates and absent ones
    /// coincide, which is exactly what position sweeps need).
    pub fn arity_of(&self, pred: PredId) -> u32 {
        self.by_pred.get(pred.index()).map_or(0, |pi| pi.arity)
    }

    /// The predicate of the atom at `idx` (cheaper than materializing the
    /// full [`AtomRef`] when only the predicate is needed).
    #[inline]
    pub fn pred_of(&self, idx: AtomIdx) -> PredId {
        self.preds[idx as usize]
    }

    /// The predicates occurring in the instance, deduplicated, in
    /// ascending id order, without materializing a `Vec`. This is the
    /// only non-test accessor: the allocating `preds()` form is gated
    /// behind `cfg(test)`.
    pub fn preds_iter(&self) -> impl Iterator<Item = PredId> + '_ {
        self.by_pred
            .iter()
            .enumerate()
            .filter(|(_, pi)| !pi.all.is_empty())
            .map(|(i, _)| PredId(i as u32))
    }

    /// The predicates occurring in the instance, deduplicated, in no
    /// particular order. Test-only convenience; production callers use
    /// [`Instance::preds_iter`].
    #[cfg(test)]
    pub fn preds(&self) -> Vec<PredId> {
        self.preds_iter().collect()
    }

    /// `dom(I)` as a streaming iterator: all distinct ground terms in
    /// first-occurrence order. The dedup set is allocated once per call;
    /// no output `Vec` is built (the allocating `dom()` form is gated
    /// behind `cfg(test)`).
    pub fn dom_iter(&self) -> impl Iterator<Item = Term> + '_ {
        let mut seen = FxHashSet::default();
        // Per-atom ranges, not the raw pool: chunk-boundary padding in
        // the arena must stay invisible.
        (0..self.len() as AtomIdx)
            .flat_map(move |i| self.atom(i).args.iter().copied())
            .filter(move |&t| seen.insert(t))
    }

    /// `dom(I)`: the active domain, i.e. all distinct ground terms, in
    /// first-occurrence order. Test-only convenience; production callers
    /// use [`Instance::dom_iter`].
    #[cfg(test)]
    pub fn dom(&self) -> Vec<Term> {
        self.dom_iter().collect()
    }

    /// Does the instance consist solely of facts (a *database*)?
    pub fn is_database(&self) -> bool {
        (0..self.len() as AtomIdx).all(|i| self.atom(i).args.iter().all(|t| t.is_const()))
    }

    /// Returns the atoms as a sorted vector of owned atoms — a canonical
    /// form useful for comparing instances irrespective of insertion
    /// order.
    pub fn sorted_atoms(&self) -> Vec<Atom> {
        let mut v: Vec<Atom> = self.iter().map(|a| a.to_atom()).collect();
        v.sort();
        v
    }

    /// Set-equality with another instance (order-independent).
    pub fn set_eq(&self, other: &Instance) -> bool {
        self.len() == other.len() && self.iter().all(|a| other.contains_ref(a))
    }

    /// Index-and-order equality with another instance: atom `i` of `self`
    /// equals atom `i` of `other` for every `i`. Stronger than
    /// [`Instance::set_eq`]; used by the parallel-vs-sequential
    /// differential suites, where the executors must agree on atom *ids*,
    /// not just the atom set.
    pub fn indexed_eq(&self, other: &Instance) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .zip(other.iter())
                .all(|(a, b)| a.pred == b.pred && a.args == b.args)
    }

    /// A read-only snapshot view for a parallel enumeration phase.
    ///
    /// The enumerate phase of a chase round never mutates the instance,
    /// so sharing it across worker threads is sound; this wrapper makes
    /// the contract explicit in the type (and is statically asserted
    /// `Send + Sync` below — the instance holds no interior mutability).
    pub fn snapshot(&self) -> Snapshot<'_> {
        Snapshot { inst: self }
    }

    /// Intersects the `(position, term)` posting lists of `pred`,
    /// restricted to atom indexes in `bounds = [lo, hi)`, into `out`
    /// (cleared first; ascending). This is the batch enumeration path's
    /// candidate computation for a step with two or more keyed argument
    /// positions: instead of scanning the shortest list and re-verifying
    /// every other position per candidate (the backtracking search's
    /// shape), the lists are intersected wholesale — the shortest list
    /// drives, the rest are galloped ([`intersect_sorted`]), so the cost
    /// is `O(|shortest| · Σ log |other|)` in the worst case and far less
    /// when the lists diverge early.
    ///
    /// Produces exactly the atoms carrying every keyed term at its
    /// position (posting lists are position-exact), i.e. the same
    /// candidate set the per-candidate unification filter accepts —
    /// intra-atom repeated-variable constraints excepted, which the
    /// caller still checks.
    ///
    /// `scratch` is a caller-recycled intermediate buffer.
    pub fn intersect_pred_term_at(
        &self,
        pred: PredId,
        keys: &[(u32, Term)],
        bounds: (AtomIdx, AtomIdx),
        out: &mut Vec<AtomIdx>,
        scratch: &mut Vec<AtomIdx>,
    ) {
        out.clear();
        if keys.is_empty() {
            let list = self.atoms_with_pred(pred);
            let lo = list.partition_point(|&i| i < bounds.0);
            let hi = list.partition_point(|&i| i < bounds.1);
            out.extend_from_slice(&list[lo..hi]);
            return;
        }
        // Drive from the shortest list (most selective first).
        let mut driver = 0usize;
        let mut driver_len = usize::MAX;
        for (k, &(pos, term)) in keys.iter().enumerate() {
            let len = self.atoms_with_pred_term_at(pred, pos, term).len();
            if len < driver_len {
                driver = k;
                driver_len = len;
            }
        }
        let (pos, term) = keys[driver];
        let list = self.atoms_with_pred_term_at(pred, pos, term);
        let lo = list.partition_point(|&i| i < bounds.0);
        let hi = list.partition_point(|&i| i < bounds.1);
        out.extend_from_slice(&list[lo..hi]);
        for (k, &(pos, term)) in keys.iter().enumerate() {
            if k == driver {
                continue;
            }
            if out.is_empty() {
                return;
            }
            let list = self.atoms_with_pred_term_at(pred, pos, term);
            scratch.clear();
            intersect_sorted(out, list, scratch);
            std::mem::swap(out, scratch);
        }
    }
}

/// Intersects two ascending index lists into `out` (appended), galloping
/// over the longer one: each element of the shorter list is located in
/// the longer by exponential search from a moving base, so the cost is
/// `O(|short| · log(|long| / |short|))` — sub-linear in the long list,
/// which is the common shape of positional posting lists (a handful of
/// delta-bound candidates against a six-figure predicate lane).
///
/// Both inputs must be strictly ascending (posting lists are); the
/// output then is too. Pinned against the naive merge intersection on
/// adversarial lane shapes in the tests.
pub fn intersect_sorted(a: &[AtomIdx], b: &[AtomIdx], out: &mut Vec<AtomIdx>) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut base = 0usize;
    for &x in short {
        if base >= long.len() {
            break;
        }
        if long[base] < x {
            // Gallop: double the step until long[base + step] >= x (or
            // the list ends); the first index with value >= x then lies
            // in (base + step/2, base + step].
            let mut step = 1usize;
            while base + step < long.len() && long[base + step] < x {
                step *= 2;
            }
            let lo = base + step / 2 + 1;
            let hi = (base + step + 1).min(long.len());
            base = lo + long[lo..hi].partition_point(|&y| y < x);
        }
        if base < long.len() && long[base] == x {
            out.push(x);
            base += 1;
        }
    }
}

/// A dedup-table probe resumption point returned by
/// [`Instance::locate_terms_hashed`] on a miss: where the probed atom
/// would be inserted, valid while the table keeps the recorded capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeHint {
    /// The vacant slot the probe walk ended at.
    slot: u32,
    /// The table capacity the walk was taken under (a change means a
    /// rehash scattered the entries and the hint is void).
    slot_count: u32,
}

/// The posting-list updates deferred by a run of
/// [`Instance::extend_terms`] calls: the appended atom indexes, in
/// ascending order, awaiting [`Instance::splice_index`]. Reusable across
/// batches (splicing drains it, keeping the allocation).
#[derive(Debug, Default)]
pub struct IndexDelta {
    pending: Vec<AtomIdx>,
}

impl IndexDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of appended atoms awaiting an index splice.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Is the delta empty (nothing awaiting a splice)?
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// A read-only, `Send + Sync` view of an [`Instance`] frozen for the
/// duration of a parallel trigger-enumeration phase. Dereferences to the
/// instance, so every read API (match plans included) works on it
/// directly.
#[derive(Clone, Copy, Debug)]
pub struct Snapshot<'a> {
    inst: &'a Instance,
}

impl Deref for Snapshot<'_> {
    type Target = Instance;

    fn deref(&self) -> &Instance {
        self.inst
    }
}

// The whole point of `Snapshot`: a frozen instance view may cross thread
// boundaries. `Instance` is plain owned data (no `Rc`, no cells), so the
// compiler derives these — the assertion pins the property against
// accidental regressions (e.g. someone caching lookups in a `RefCell`).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot<'static>>();
    assert_send_sync::<Instance>();
};

/// Iterator over the atoms of an [`Instance`], yielding borrowed views.
#[derive(Clone)]
pub struct AtomIter<'a> {
    inst: &'a Instance,
    next: AtomIdx,
    end: AtomIdx,
}

impl<'a> Iterator for AtomIter<'a> {
    type Item = AtomRef<'a>;

    fn next(&mut self) -> Option<AtomRef<'a>> {
        if self.next >= self.end {
            return None;
        }
        let a = self.inst.atom(self.next);
        self.next += 1;
        Some(a)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AtomIter<'_> {}

impl FromIterator<Atom> for Instance {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> Self {
        Instance::from_atoms(iter)
    }
}

impl<'a> IntoIterator for &'a Instance {
    type Item = AtomRef<'a>;
    type IntoIter = AtomIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{ConstId, NullId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    #[test]
    fn insert_deduplicates() {
        let mut inst = Instance::new();
        assert_eq!(inst.insert(atom(0, vec![c(0), c(1)])), Some(0));
        assert_eq!(inst.insert(atom(0, vec![c(0), c(1)])), None);
        assert_eq!(inst.insert(atom(0, vec![c(1), c(0)])), Some(1));
        assert_eq!(inst.len(), 2);
        assert!(inst.contains(&atom(0, vec![c(0), c(1)])));
        assert_eq!(inst.index_of(&atom(0, vec![c(1), c(0)])), Some(1));
        assert_eq!(inst.index_of(&atom(0, vec![c(1), c(1)])), None);
    }

    #[test]
    fn insert_terms_matches_insert() {
        let mut inst = Instance::new();
        assert_eq!(inst.insert_terms(PredId(0), &[c(0), c(1)]), Some(0));
        assert_eq!(inst.insert_terms(PredId(0), &[c(0), c(1)]), None);
        assert_eq!(inst.insert(atom(0, vec![c(0), c(1)])), None);
        assert_eq!(inst.index_of_terms(PredId(0), &[c(0), c(1)]), Some(0));
    }

    #[test]
    fn dedup_survives_table_growth() {
        let mut inst = Instance::new();
        for i in 0..1000 {
            assert!(inst.insert(atom(0, vec![c(i), c(i + 1)])).is_some());
        }
        for i in 0..1000 {
            assert!(inst.insert(atom(0, vec![c(i), c(i + 1)])).is_none());
            assert!(inst.contains(&atom(0, vec![c(i), c(i + 1)])));
        }
        assert_eq!(inst.len(), 1000);
    }

    #[test]
    fn atom_views_read_the_arena() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(1, vec![c(2)]));
        let a = inst.atom(0);
        assert_eq!(a.pred, PredId(0));
        assert_eq!(a.args, &[c(0), c(1)]);
        assert_eq!(inst.atom(1).args, &[c(2)]);
        assert_eq!(a.to_atom(), atom(0, vec![c(0), c(1)]));
    }

    #[test]
    fn indexes_track_insertions() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(1, vec![c(0)]));
        inst.insert(atom(0, vec![c(2), c(0)]));
        assert_eq!(inst.atoms_with_pred(PredId(0)), &[0, 2]);
        assert_eq!(inst.atoms_with_pred(PredId(1)), &[1]);
        assert_eq!(inst.atoms_with_pred(PredId(9)), &[] as &[AtomIdx]);
        // Position-aware lists: c(0) occurs at position 0 of atom 0 and
        // at position 1 of atom 2 — distinct lists.
        assert_eq!(inst.atoms_with_pred_term_at(PredId(0), 0, c(0)), &[0]);
        assert_eq!(inst.atoms_with_pred_term_at(PredId(0), 1, c(0)), &[2]);
        assert_eq!(inst.atoms_with_pred_term_at(PredId(0), 0, c(2)), &[2]);
        assert_eq!(
            inst.atoms_with_pred_term_at(PredId(0), 1, c(2)),
            &[] as &[AtomIdx]
        );
        assert_eq!(inst.arity_of(PredId(0)), 2);
        assert_eq!(inst.arity_of(PredId(1)), 1);
        assert_eq!(inst.arity_of(PredId(9)), 0);
    }

    #[test]
    fn lane_keys_agree_with_term_keys() {
        // The dense-lane migration rebuilds overflow keys from raw
        // (kind, id) coordinates; they must match the term-based packing
        // bit for bit or lookups would miss migrated entries.
        for pos in [0u32, 1, 7] {
            for id in [0u32, 1, 513, u32::MAX >> 2] {
                assert_eq!(
                    pos_kind_id_key(pos, 0, id),
                    pos_term_key(pos, c(id)),
                    "const {pos}/{id}"
                );
                assert_eq!(
                    pos_kind_id_key(pos, 1, id),
                    pos_term_key(pos, n(id)),
                    "null {pos}/{id}"
                );
            }
        }
    }

    #[test]
    fn sparse_windows_migrate_to_the_overflow_map() {
        // Constants far apart force the (pred 0, pos 0) const lane
        // sparse: the window would exceed LANE_SPARSE_MIN at < 1/4
        // occupancy, so it migrates. Lookups must see every atom
        // regardless of which storage served them.
        let mut inst = Instance::new();
        let ids: Vec<u32> = (0..20).map(|k| k * 4096).collect();
        for (row, &id) in ids.iter().enumerate() {
            inst.insert(atom(0, vec![c(id), c(row as u32)]));
        }
        for (row, &id) in ids.iter().enumerate() {
            assert_eq!(
                inst.atoms_with_pred_term_at(PredId(0), 0, c(id)),
                &[row as AtomIdx],
                "id {id}"
            );
            assert_eq!(
                inst.atoms_with_pred_term_at(PredId(0), 1, c(row as u32)),
                &[row as AtomIdx]
            );
        }
        // Re-inserting an existing sparse term extends its migrated list.
        inst.insert(atom(0, vec![c(ids[3]), c(999)]));
        assert_eq!(
            inst.atoms_with_pred_term_at(PredId(0), 0, c(ids[3])),
            &[3, 20]
        );
    }

    #[test]
    fn descending_ids_rebase_or_migrate() {
        // A small dip below the window base rebases the lane in place.
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(500)]));
        inst.insert(atom(0, vec![c(100)]));
        inst.insert(atom(0, vec![c(300)]));
        for (row, id) in [(0u32, 500u32), (1, 100), (2, 300)] {
            assert_eq!(inst.atoms_with_pred_term_at(PredId(0), 0, c(id)), &[row]);
        }
        // A huge dip disables the lane; everything stays findable.
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(2_000_000)]));
        inst.insert(atom(0, vec![c(3)]));
        assert_eq!(
            inst.atoms_with_pred_term_at(PredId(0), 0, c(2_000_000)),
            &[0]
        );
        assert_eq!(inst.atoms_with_pred_term_at(PredId(0), 0, c(3)), &[1]);
        assert_eq!(
            inst.atoms_with_pred_term_at(PredId(0), 0, c(4)),
            &[] as &[AtomIdx]
        );
    }

    #[test]
    fn repeated_term_indexed_once_per_position() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(0), c(0)]));
        for pos in 0..3 {
            assert_eq!(inst.atoms_with_pred_term_at(PredId(0), pos, c(0)), &[0]);
        }
    }

    #[test]
    fn snapshot_reads_like_the_instance() {
        let inst = Instance::from_atoms(vec![atom(0, vec![c(0), c(1)])]);
        let snap = inst.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.atom(0).args, &[c(0), c(1)]);
        assert_eq!(snap.atoms_with_pred_term_at(PredId(0), 1, c(1)), &[0]);
    }

    #[test]
    fn indexed_eq_requires_identical_order() {
        let a = Instance::from_atoms(vec![atom(0, vec![c(0)]), atom(1, vec![c(1)])]);
        let b = Instance::from_atoms(vec![atom(1, vec![c(1)]), atom(0, vec![c(0)])]);
        assert!(a.set_eq(&b));
        assert!(!a.indexed_eq(&b));
        assert!(a.indexed_eq(&a.clone()));
    }

    #[test]
    fn dom_and_database_checks() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        assert!(inst.is_database());
        inst.insert(atom(0, vec![c(1), n(0)]));
        assert!(!inst.is_database());
        assert_eq!(inst.dom(), vec![c(0), c(1), n(0)]);
    }

    #[test]
    fn set_eq_ignores_order() {
        let a = Instance::from_atoms(vec![atom(0, vec![c(0)]), atom(1, vec![c(1)])]);
        let b = Instance::from_atoms(vec![atom(1, vec![c(1)]), atom(0, vec![c(0)])]);
        assert!(a.set_eq(&b));
        let c_ = Instance::from_atoms(vec![atom(1, vec![c(1)])]);
        assert!(!a.set_eq(&c_));
    }

    #[test]
    fn iter_range_gives_delta() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0)]));
        inst.insert(atom(0, vec![c(1)]));
        inst.insert(atom(0, vec![c(2)]));
        let delta: Vec<Atom> = inst.iter_range(1, 3).map(|a| a.to_atom()).collect();
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0], atom(0, vec![c(1)]));
    }

    #[test]
    fn extend_terms_defers_index_maintenance() {
        use crate::hash::hash_atom;
        let mut eager = Instance::new();
        let mut deferred = Instance::new();
        let mut delta = IndexDelta::new();
        let atoms = [
            atom(0, vec![c(0), c(1)]),
            atom(1, vec![c(1)]),
            atom(0, vec![c(0), c(1)]), // duplicate
            atom(0, vec![c(1), c(0)]),
        ];
        for a in &atoms {
            let h = hash_atom(a.pred, &a.args);
            assert_eq!(
                eager.insert_terms(a.pred, &a.args),
                deferred.extend_terms(a.pred, &a.args, h, &mut delta)
            );
        }
        // Dedup + positional reads are live before the splice...
        assert_eq!(deferred.len(), 3);
        assert_eq!(deferred.index_of(&atoms[0]), Some(0));
        assert_eq!(deferred.atom(2).args, &[c(1), c(0)]);
        // ...but posting lists are not.
        assert!(deferred.atoms_with_pred(PredId(0)).is_empty());
        assert_eq!(delta.len(), 3);
        deferred.splice_index(&mut delta);
        assert!(delta.is_empty());
        assert_eq!(
            deferred.atoms_with_pred(PredId(0)),
            eager.atoms_with_pred(PredId(0))
        );
        assert_eq!(
            deferred.atoms_with_pred_term_at(PredId(0), 1, c(0)),
            eager.atoms_with_pred_term_at(PredId(0), 1, c(0))
        );
        assert_eq!(deferred.arity_of(PredId(1)), 1);
        assert!(deferred.indexed_eq(&eager));
    }

    #[test]
    fn insert_new_terms_hinted_matches_plain_insert() {
        use crate::hash::hash_atom;
        // Fresh hints: locate → hinted insert must reproduce plain
        // inserts exactly, across enough atoms to cross table growth.
        let mut hinted = Instance::new();
        let mut plain = Instance::new();
        for i in 0..300u32 {
            let args = [c(i), c(i + 1)];
            let h = hash_atom(PredId(0), &args);
            let hint = hinted
                .locate_terms_hashed(PredId(0), &args, h)
                .expect_err("atom is new");
            let idx = hinted.insert_new_terms_hinted(PredId(0), &args, h, hint);
            assert_eq!(Some(idx), plain.insert_terms(PredId(0), &args));
        }
        assert!(hinted.indexed_eq(&plain));
        for i in 0..300u32 {
            assert_eq!(
                hinted.atoms_with_pred_term_at(PredId(0), 0, c(i)),
                plain.atoms_with_pred_term_at(PredId(0), 0, c(i)),
                "postings for {i}"
            );
            assert_eq!(hinted.index_of(&atom(0, vec![c(i), c(i + 1)])), Some(i));
        }
        // A stale hint — the table rehashed after the locate — falls
        // back to the full probe and still lands the atom correctly.
        let mut inst = Instance::new();
        let args = [c(9_999), c(0)];
        let h = hash_atom(PredId(1), &args);
        let stale = inst
            .locate_terms_hashed(PredId(1), &args, h)
            .expect_err("atom is new");
        for i in 0..100u32 {
            inst.insert(atom(0, vec![c(i)]));
        }
        let idx = inst.insert_new_terms_hinted(PredId(1), &args, h, stale);
        assert_eq!(idx, 100);
        assert_eq!(inst.index_of_terms(PredId(1), &args), Some(100));
        assert_eq!(inst.atoms_with_pred(PredId(1)), &[100]);
    }

    #[test]
    fn index_of_terms_hashed_matches_unhashed() {
        use crate::hash::hash_atom;
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        let h = hash_atom(PredId(0), &[c(0), c(1)]);
        assert_eq!(
            inst.index_of_terms_hashed(PredId(0), &[c(0), c(1)], h),
            Some(0)
        );
        let h2 = hash_atom(PredId(0), &[c(1), c(1)]);
        assert_eq!(
            inst.index_of_terms_hashed(PredId(0), &[c(1), c(1)], h2),
            None
        );
    }

    #[test]
    fn iterator_accessors_match_vec_forms() {
        let mut inst = Instance::new();
        inst.insert(atom(2, vec![c(0), c(1)]));
        inst.insert(atom(0, vec![c(1), n(0)]));
        let preds: Vec<PredId> = inst.preds_iter().collect();
        let mut expect = inst.preds();
        expect.sort();
        assert_eq!(preds, expect); // preds_iter is ascending
        let dom: Vec<Term> = inst.dom_iter().collect();
        assert_eq!(dom, inst.dom());
    }

    /// The reference merge intersection `intersect_sorted` is pinned
    /// against: one linear walk over both lists.
    fn naive_intersect(a: &[AtomIdx], b: &[AtomIdx]) -> Vec<AtomIdx> {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    #[test]
    fn galloping_intersection_matches_naive_on_adversarial_shapes() {
        // Lane shapes that stress every gallop branch: empty lists,
        // singletons, disjoint ranges, interleavings, dense-vs-sparse
        // (the gallop's home turf), duplicate-free runs with long gaps,
        // and equal lists.
        let dense: Vec<AtomIdx> = (0..4096).collect();
        let sparse: Vec<AtomIdx> = (0..4096).step_by(97).collect();
        let ends: Vec<AtomIdx> = vec![0, 4095];
        let tail: Vec<AtomIdx> = (4000..4200).collect();
        let shapes: Vec<(Vec<AtomIdx>, Vec<AtomIdx>)> = vec![
            (vec![], vec![]),
            (vec![], vec![1, 2, 3]),
            (vec![5], vec![5]),
            (vec![5], vec![4]),
            (vec![1, 2, 3], vec![4, 5, 6]),
            (vec![4, 5, 6], vec![1, 2, 3]),
            (vec![1, 3, 5, 7, 9], vec![2, 3, 6, 7, 10]),
            (dense.clone(), sparse.clone()),
            (sparse.clone(), dense.clone()),
            (dense.clone(), ends.clone()),
            (dense.clone(), tail.clone()),
            (tail.clone(), sparse.clone()),
            (dense.clone(), dense.clone()),
        ];
        for (a, b) in &shapes {
            let mut out = Vec::new();
            intersect_sorted(a, b, &mut out);
            assert_eq!(
                out,
                naive_intersect(a, b),
                "shapes |a|={} |b|={}",
                a.len(),
                b.len()
            );
        }
    }

    #[test]
    fn intersect_pred_term_at_matches_probe_and_filter() {
        // A triangle-ish edge set: intersecting (pos 0, X) with
        // (pos 1, Y) must equal probing one list and filtering by the
        // other position, for every bound pair — including bounds
        // clipping.
        let mut inst = Instance::new();
        for i in 0..30u32 {
            inst.insert(atom(0, vec![c(i % 5), c(i % 7)]));
        }
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        for x in 0..5u32 {
            for y in 0..7u32 {
                for bounds in [(0, u32::MAX), (0, 13), (7, 21)] {
                    inst.intersect_pred_term_at(
                        PredId(0),
                        &[(0, c(x)), (1, c(y))],
                        bounds,
                        &mut out,
                        &mut scratch,
                    );
                    let expect: Vec<AtomIdx> = inst
                        .atoms_with_pred_term_at(PredId(0), 0, c(x))
                        .iter()
                        .copied()
                        .filter(|&i| i >= bounds.0 && i < bounds.1 && inst.atom(i).args[1] == c(y))
                        .collect();
                    assert_eq!(out, expect, "x={x} y={y} bounds={bounds:?}");
                }
            }
        }
        // No keys: the bounds-clipped predicate list.
        inst.intersect_pred_term_at(PredId(0), &[], (3, 9), &mut out, &mut scratch);
        assert_eq!(out, vec![3, 4, 5, 6, 7, 8]);
        // Three keys (repeated-position style): still exact.
        inst.intersect_pred_term_at(
            PredId(0),
            &[(0, c(1)), (1, c(1)), (0, c(1))],
            (0, u32::MAX),
            &mut out,
            &mut scratch,
        );
        let expect: Vec<AtomIdx> = (0..inst.len() as AtomIdx)
            .filter(|&i| inst.atom(i).args == [c(1), c(1)])
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn zero_arity_atoms_are_supported() {
        let mut inst = Instance::new();
        assert_eq!(inst.insert(atom(0, vec![])), Some(0));
        assert_eq!(inst.insert(atom(0, vec![])), None);
        assert_eq!(inst.insert(atom(1, vec![])), Some(1));
        assert_eq!(inst.atom(0).args.len(), 0);
        assert_eq!(inst.atoms_with_pred(PredId(0)), &[0]);
    }
}
