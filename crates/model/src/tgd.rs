//! Tuple-generating dependencies (TGDs) and sets thereof.
//!
//! A TGD `σ : φ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄)` is stored with its variables
//! normalized to a dense rule-local id space `0..var_count`, its *frontier*
//! `fr(σ) = x̄` (variables shared between body and head), its existential
//! variables `z̄`, and — when one exists — the index of its *guard*: the
//! leftmost body atom containing every body variable (§2 of the paper).
//!
//! The classes studied by the paper are detected structurally:
//!
//! * [`TgdClass::SimpleLinear`] (`SL`): one body atom, no repeated variable
//!   in it;
//! * [`TgdClass::Linear`] (`L`): one body atom;
//! * [`TgdClass::Guarded`] (`G`): some body atom guards all body variables;
//! * [`TgdClass::General`]: everything else.
//!
//! `SL ⊊ L ⊊ G ⊊ General`, and [`TgdClass`] orders accordingly.

use std::collections::{BTreeSet, HashMap};

use crate::atom::Atom;
use crate::error::ModelError;
use crate::plan::MatchPlan;
use crate::symbols::{PredId, VarId};
use crate::term::Term;

/// Index of a TGD within a [`TgdSet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RuleId(pub u32);

impl RuleId {
    /// The id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The syntactic class of a TGD or TGD set, ordered by inclusion.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum TgdClass {
    /// Simple linear: single body atom without repeated variables.
    SimpleLinear,
    /// Linear: single body atom.
    Linear,
    /// Guarded: a body atom contains all body variables.
    Guarded,
    /// Arbitrary TGD.
    General,
}

impl TgdClass {
    /// Short name as used in the paper (`SL`, `L`, `G`, `TGD`).
    pub fn short_name(self) -> &'static str {
        match self {
            TgdClass::SimpleLinear => "SL",
            TgdClass::Linear => "L",
            TgdClass::Guarded => "G",
            TgdClass::General => "TGD",
        }
    }
}

/// A single tuple-generating dependency.
///
/// Construction compiles the body (and head) into [`MatchPlan`]s once, so
/// the chase engine never re-derives pivot permutations, regions, or
/// index-probe positions per round.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tgd {
    body: Vec<Atom>,
    head: Vec<Atom>,
    var_count: u32,
    frontier: Vec<VarId>,
    existentials: Vec<VarId>,
    body_vars: Vec<VarId>,
    guard: Option<usize>,
    body_plan: MatchPlan,
    head_plan: MatchPlan,
}

impl Tgd {
    /// Builds a TGD from body and head atom lists, normalizing variables
    /// to a dense rule-local id space (in order of first occurrence, body
    /// first). Validates the paper's structural requirements:
    ///
    /// * body and head are non-empty;
    /// * atoms are constant-free (TGDs mention only variables);
    /// * consequently every head variable is either a frontier variable or
    ///   existentially quantified — which is always true syntactically.
    pub fn new(body: Vec<Atom>, head: Vec<Atom>) -> Result<Tgd, ModelError> {
        if body.is_empty() {
            return Err(ModelError::InvalidTgd {
                msg: "empty body".into(),
            });
        }
        if head.is_empty() {
            return Err(ModelError::InvalidTgd {
                msg: "empty head".into(),
            });
        }
        for atom in body.iter().chain(head.iter()) {
            if atom.args.iter().any(|t| !t.is_var()) {
                return Err(ModelError::InvalidTgd {
                    msg: "TGDs must be constant-free (variables only)".into(),
                });
            }
        }

        // Renumber variables densely: body-first, first-occurrence order.
        let mut remap: HashMap<VarId, VarId> = HashMap::new();
        let renumber = |atom: &Atom, remap: &mut HashMap<VarId, VarId>| {
            atom.map_terms(|t| match t {
                Term::Var(v) => {
                    let next = VarId(remap.len() as u32);
                    Term::Var(*remap.entry(v).or_insert(next))
                }
                other => other,
            })
        };
        let body: Vec<Atom> = body.iter().map(|a| renumber(a, &mut remap)).collect();
        let head: Vec<Atom> = head.iter().map(|a| renumber(a, &mut remap)).collect();
        let var_count = remap.len() as u32;

        let body_vars: BTreeSet<VarId> = body.iter().flat_map(|a| a.vars()).collect();
        let head_vars: BTreeSet<VarId> = head.iter().flat_map(|a| a.vars()).collect();
        let frontier: Vec<VarId> = body_vars.intersection(&head_vars).copied().collect();
        let existentials: Vec<VarId> = head_vars.difference(&body_vars).copied().collect();

        // Leftmost guard, if any.
        let guard = body.iter().position(|a| {
            let atom_vars: BTreeSet<VarId> = a.vars().collect();
            body_vars.is_subset(&atom_vars)
        });

        let body_plan = MatchPlan::compile(&body, var_count);
        let head_plan = MatchPlan::compile_scan(&head, var_count);
        Ok(Tgd {
            body,
            head,
            var_count,
            frontier,
            existentials,
            body_vars: body_vars.into_iter().collect(),
            guard,
            body_plan,
            head_plan,
        })
    }

    /// The body atoms `body(σ)`.
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// The head atoms `head(σ)`.
    pub fn head(&self) -> &[Atom] {
        &self.head
    }

    /// Number of rule-local variables (dense ids `0..var_count`).
    pub fn var_count(&self) -> u32 {
        self.var_count
    }

    /// The frontier `fr(σ)` (sorted).
    pub fn frontier(&self) -> &[VarId] {
        &self.frontier
    }

    /// The existentially quantified variables (sorted).
    pub fn existentials(&self) -> &[VarId] {
        &self.existentials
    }

    /// The variables occurring in the body (sorted). Every body variable
    /// is bound by any body match; the head existentials are exactly
    /// `0..var_count` minus these.
    pub fn body_vars(&self) -> &[VarId] {
        &self.body_vars
    }

    /// The compiled match plan of the body — the chase's hot-path join.
    pub fn body_plan(&self) -> &MatchPlan {
        &self.body_plan
    }

    /// The compiled match plan of the head (used by the restricted
    /// chase's activeness check and by model checking).
    pub fn head_plan(&self) -> &MatchPlan {
        &self.head_plan
    }

    /// Index into `body()` of the leftmost guard atom, if the TGD is
    /// guarded.
    pub fn guard_index(&self) -> Option<usize> {
        self.guard
    }

    /// The guard atom `guard(σ)`, if the TGD is guarded.
    pub fn guard(&self) -> Option<&Atom> {
        self.guard.map(|i| &self.body[i])
    }

    /// Is the TGD guarded?
    pub fn is_guarded(&self) -> bool {
        self.guard.is_some()
    }

    /// Is the TGD linear (single body atom)?
    pub fn is_linear(&self) -> bool {
        self.body.len() == 1
    }

    /// Is the TGD simple linear (single body atom, no repeated variable)?
    pub fn is_simple_linear(&self) -> bool {
        self.is_linear() && {
            let a = &self.body[0];
            let distinct = a.vars().count();
            distinct == a.arity()
        }
    }

    /// The most specific class this TGD belongs to.
    pub fn classify(&self) -> TgdClass {
        if self.is_simple_linear() {
            TgdClass::SimpleLinear
        } else if self.is_linear() {
            TgdClass::Linear
        } else if self.is_guarded() {
            TgdClass::Guarded
        } else {
            TgdClass::General
        }
    }

    /// All atoms of the TGD (body then head).
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().chain(self.head.iter())
    }
}

/// A finite set `Σ` of TGDs.
#[derive(Clone, Debug, Default)]
pub struct TgdSet {
    tgds: Vec<Tgd>,
}

impl TgdSet {
    /// Creates a TGD set.
    pub fn new(tgds: Vec<Tgd>) -> Self {
        TgdSet { tgds }
    }

    /// Adds a TGD, returning its id.
    pub fn push(&mut self, tgd: Tgd) -> RuleId {
        let id = RuleId(self.tgds.len() as u32);
        self.tgds.push(tgd);
        id
    }

    /// Number of TGDs.
    pub fn len(&self) -> usize {
        self.tgds.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.tgds.is_empty()
    }

    /// The TGD with the given id.
    pub fn get(&self, id: RuleId) -> &Tgd {
        &self.tgds[id.index()]
    }

    /// Iterates over `(id, tgd)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &Tgd)> {
        self.tgds
            .iter()
            .enumerate()
            .map(|(i, t)| (RuleId(i as u32), t))
    }

    /// `sch(Σ)`: the predicates occurring in the TGDs, sorted.
    pub fn schema_preds(&self) -> Vec<PredId> {
        let set: BTreeSet<PredId> = self
            .tgds
            .iter()
            .flat_map(|t| t.atoms().map(|a| a.pred))
            .collect();
        set.into_iter().collect()
    }

    /// `ar(Σ)`: the maximum arity over the predicates of `sch(Σ)`.
    pub fn max_arity(&self) -> usize {
        self.tgds
            .iter()
            .flat_map(|t| t.atoms().map(Atom::arity))
            .max()
            .unwrap_or(0)
    }

    /// `|atoms(Σ)|`: the number of atoms occurring in the TGDs. Because no
    /// two TGDs share a variable (guaranteed by per-rule variable
    /// normalization plus the set structure), atoms of distinct rules are
    /// distinct, so this is the plain count.
    pub fn atom_count(&self) -> usize {
        self.tgds.iter().map(|t| t.body.len() + t.head.len()).sum()
    }

    /// `‖Σ‖ = |atoms(Σ)| · |sch(Σ)| · ar(Σ)` (§2).
    pub fn norm(&self) -> u128 {
        self.atom_count() as u128 * self.schema_preds().len() as u128 * self.max_arity() as u128
    }

    /// The most general class among the member TGDs (i.e. the smallest
    /// class containing the whole set).
    pub fn classify(&self) -> TgdClass {
        self.tgds
            .iter()
            .map(Tgd::classify)
            .max()
            .unwrap_or(TgdClass::SimpleLinear)
    }

    /// Checks that every TGD is in the given class (or a subclass).
    pub fn check_class(&self, required: TgdClass) -> Result<(), ModelError> {
        for (id, tgd) in self.iter() {
            if tgd.classify() > required {
                return Err(ModelError::WrongClass {
                    required: required.short_name(),
                    rule: format!("rule #{}", id.0),
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<Tgd> for TgdSet {
    fn from_iter<T: IntoIterator<Item = Tgd>>(iter: T) -> Self {
        TgdSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    /// R(x, y) → ∃z R(y, z) — the paper's running non-terminating rule.
    fn successor_rule() -> Tgd {
        Tgd::new(
            vec![atom(0, vec![v(10), v(11)])],
            vec![atom(0, vec![v(11), v(12)])],
        )
        .unwrap()
    }

    #[test]
    fn variables_are_normalized_densely() {
        let t = successor_rule();
        assert_eq!(t.var_count(), 3);
        assert_eq!(t.body()[0], atom(0, vec![v(0), v(1)]));
        assert_eq!(t.head()[0], atom(0, vec![v(1), v(2)]));
        assert_eq!(t.frontier(), &[VarId(1)]);
        assert_eq!(t.existentials(), &[VarId(2)]);
    }

    #[test]
    fn classification_ladder() {
        // SL: R(x,y) → P(x)
        let sl = Tgd::new(vec![atom(0, vec![v(0), v(1)])], vec![atom(1, vec![v(0)])]).unwrap();
        assert_eq!(sl.classify(), TgdClass::SimpleLinear);

        // L (not SL): R(x,x) → ∃z R(z,x) — Example 7.1.
        let l = Tgd::new(
            vec![atom(0, vec![v(0), v(0)])],
            vec![atom(0, vec![v(1), v(0)])],
        )
        .unwrap();
        assert_eq!(l.classify(), TgdClass::Linear);
        assert!(l.is_guarded());

        // G (not L): R(x,y), P(x,z,u) → ∃w P(y,w,z) — guard is P(x,z,u)? No:
        // body vars {x,y,z,u}; P(x,z,u) misses y, R(x,y) misses z,u. Not
        // guarded. Use a proper guard instead:
        let g = Tgd::new(
            vec![atom(1, vec![v(0), v(1), v(2)]), atom(0, vec![v(0), v(1)])],
            vec![atom(0, vec![v(2), v(3)])],
        )
        .unwrap();
        assert_eq!(g.classify(), TgdClass::Guarded);
        assert_eq!(g.guard_index(), Some(0));

        // General: R(x,y), P(y,z) → S(x,z) with no guard.
        let gen = Tgd::new(
            vec![atom(0, vec![v(0), v(1)]), atom(2, vec![v(1), v(2)])],
            vec![atom(3, vec![v(0), v(2)])],
        )
        .unwrap();
        assert_eq!(gen.classify(), TgdClass::General);
        assert!(gen.guard().is_none());
    }

    #[test]
    fn class_order_matches_inclusion() {
        assert!(TgdClass::SimpleLinear < TgdClass::Linear);
        assert!(TgdClass::Linear < TgdClass::Guarded);
        assert!(TgdClass::Guarded < TgdClass::General);
    }

    #[test]
    fn validation_rejects_bad_rules() {
        assert!(Tgd::new(vec![], vec![atom(0, vec![v(0)])]).is_err());
        assert!(Tgd::new(vec![atom(0, vec![v(0)])], vec![]).is_err());
        let with_const = Atom::new(
            PredId(0),
            vec![Term::Const(crate::symbols::ConstId(0)), v(0)],
        );
        assert!(Tgd::new(vec![with_const], vec![atom(0, vec![v(0), v(0)])]).is_err());
    }

    #[test]
    fn set_statistics() {
        let mut set = TgdSet::default();
        set.push(successor_rule());
        // R(x,y) → P(x,y): 2 atoms.
        set.push(
            Tgd::new(
                vec![atom(0, vec![v(0), v(1)])],
                vec![atom(1, vec![v(0), v(1)])],
            )
            .unwrap(),
        );
        assert_eq!(set.len(), 2);
        assert_eq!(set.schema_preds(), vec![PredId(0), PredId(1)]);
        assert_eq!(set.max_arity(), 2);
        assert_eq!(set.atom_count(), 4);
        // ‖Σ‖ = 4 atoms · 2 preds · arity 2 = 16.
        assert_eq!(set.norm(), 16);
        assert_eq!(set.classify(), TgdClass::SimpleLinear);
        assert!(set.check_class(TgdClass::Linear).is_ok());
    }

    #[test]
    fn check_class_rejects_wider_rules() {
        let mut set = TgdSet::default();
        set.push(
            Tgd::new(
                vec![atom(0, vec![v(0), v(0)])],
                vec![atom(0, vec![v(1), v(0)])],
            )
            .unwrap(),
        );
        assert!(set.check_class(TgdClass::SimpleLinear).is_err());
        assert!(set.check_class(TgdClass::Linear).is_ok());
    }
}
