//! # nuchase-model
//!
//! Relational substrate for the `nuchase` workspace — the reproduction of
//! *“Non-Uniformly Terminating Chase: Size and Complexity”* (Calautti,
//! Gottlob, Pieris; PODS 2022).
//!
//! This crate owns the vocabulary of §2 of the paper:
//!
//! * interned **symbols** — predicates with arities, constants, variables
//!   ([`SymbolTable`]);
//! * **terms** of the universe `C ∪ N ∪ V` ([`Term`]);
//! * **atoms**, **instances** (indexed sets of ground atoms), and
//!   **databases** (instances of facts) ([`Atom`], [`Instance`]);
//! * **TGDs** `φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)` with frontier/existential/guard
//!   analysis and the class ladder `SL ⊊ L ⊊ G` ([`Tgd`], [`TgdSet`],
//!   [`TgdClass`]);
//! * **homomorphisms** (backtracking search with semi-naive delta
//!   enumeration) — the join machinery that drives both the chase and
//!   query evaluation ([`hom`]), compiled per conjunction into
//!   allocation-free **match plans** ([`plan`]);
//! * Boolean **conjunctive queries / UCQs**, the target language of the
//!   paper's AC⁰ data-complexity deciders ([`Cq`], [`Ucq`]);
//! * a **parser** and **pretty-printer** for a small Datalog± text format
//!   ([`parser`], [`display`]).
//!
//! Higher layers build on this: `nuchase-engine` implements the
//! semi-oblivious chase, `nuchase-rewrite` the simplification and
//! linearization techniques, and `nuchase` (core) the termination
//! characterizations and deciders.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atom;
pub mod chunk;
pub mod display;
pub mod error;
pub mod fault;
pub mod hash;
pub mod hom;
pub mod instance;
pub mod parser;
pub mod plan;
pub mod query;
pub mod symbols;
pub mod term;
pub mod tgd;

pub use atom::{Atom, AtomRef};
pub use chunk::{ChunkedArena, SpillArena};
pub use display::DisplayWith;
pub use error::ModelError;
pub use fault::{FaultPlan, FaultSite, InjectedFault};
pub use instance::{
    intersect_sorted, AtomIdx, AtomIter, IndexDelta, Instance, ProbeHint, Snapshot,
};
pub use parser::{parse_database, parse_into, parse_program, parse_tgds, Program};
pub use plan::{BatchScratch, BindingBlock, MatchPlan, Scratch};
pub use query::{Cq, Ucq};
pub use symbols::{ConstId, NullId, PredId, SymbolTable, VarId};
pub use term::Term;
pub use tgd::{RuleId, Tgd, TgdClass, TgdSet};
