//! Atoms: a predicate applied to a tuple of terms.

use std::fmt;

use crate::symbols::{NullId, PredId, VarId};
use crate::term::Term;

/// An atom `R(t₁, …, tₙ)`.
///
/// Atoms are the unit of storage in instances and the unit of matching in
/// rule bodies and queries. They are small (one `u32` + a boxed slice) and
/// hash/compare structurally.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: PredId,
    /// The argument tuple.
    pub args: Box<[Term]>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(pred: PredId, args: impl Into<Box<[Term]>>) -> Self {
        Atom {
            pred,
            args: args.into(),
        }
    }

    /// The arity of the atom (length of the argument tuple).
    #[inline]
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Is this atom ground (i.e. a fact or a chase atom — no variables)?
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| t.is_ground())
    }

    /// Is this atom a *fact* in the paper's sense (constants only)?
    pub fn is_fact(&self) -> bool {
        self.args.iter().all(|t| t.is_const())
    }

    /// Iterates over the distinct variables of the atom in order of first
    /// occurrence.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        let mut seen: Vec<VarId> = Vec::new();
        self.args.iter().filter_map(move |t| match t {
            Term::Var(v) if !seen.contains(v) => {
                seen.push(*v);
                Some(*v)
            }
            _ => None,
        })
    }

    /// Iterates over the distinct nulls of the atom.
    pub fn nulls(&self) -> impl Iterator<Item = NullId> + '_ {
        let mut seen: Vec<NullId> = Vec::new();
        self.args.iter().filter_map(move |t| match t {
            Term::Null(n) if !seen.contains(n) => {
                seen.push(*n);
                Some(*n)
            }
            _ => None,
        })
    }

    /// The set of positions `(R, i)` at which the variable `v` occurs,
    /// as 0-based argument indexes. Mirrors the paper's `pos(R(t̄), x)`.
    pub fn positions_of_var(&self, v: VarId) -> Vec<usize> {
        self.args
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (*t == Term::Var(v)).then_some(i))
            .collect()
    }

    /// `dom(α)`: the distinct ground terms of the atom in order of first
    /// occurrence (constants and nulls; variables are skipped).
    pub fn dom(&self) -> Vec<Term> {
        let mut out: Vec<Term> = Vec::with_capacity(self.args.len());
        for &t in self.args.iter() {
            if t.is_ground() && !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }

    /// The distinct terms (of any kind) in order of first occurrence.
    /// This is the paper's `unique(t̄)` restricted to distinctness.
    pub fn unique_terms(&self) -> Vec<Term> {
        let mut out: Vec<Term> = Vec::with_capacity(self.args.len());
        for &t in self.args.iter() {
            if !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }

    /// The *identifier tuple* `id(t̄)` of the paper's simplification
    /// technique: position `i` holds the (1-based) index in `unique(t̄)` at
    /// which `tᵢ` first occurs. E.g. `id((x,y,x,z,y)) = (1,2,1,3,2)`.
    pub fn id_tuple(&self) -> Vec<u8> {
        let unique = self.unique_terms();
        self.args
            .iter()
            .map(|t| {
                let idx = unique.iter().position(|u| u == t).expect("term in unique");
                u8::try_from(idx + 1).expect("arity fits in u8")
            })
            .collect()
    }

    /// Applies a substitution given as a function on terms, producing a new
    /// atom. Ground terms are passed through the function too, so callers
    /// can rename nulls/constants as well as variables.
    pub fn map_terms(&self, mut f: impl FnMut(Term) -> Term) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|&t| f(t)).collect(),
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, fmt: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_ref().fmt(fmt)
    }
}

/// A borrowed view of an atom: a predicate plus an argument slice.
///
/// This is the unit the arena-backed [`Instance`](crate::Instance) hands
/// out — its atoms are `(pred, range)` views into one flat term pool, so
/// reading an atom allocates nothing and clones nothing. `AtomRef` mirrors
/// the read surface of [`Atom`] (`pred` / `args` fields plus the ground
/// predicates) and converts to an owned [`Atom`] with
/// [`AtomRef::to_atom`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtomRef<'a> {
    /// The predicate symbol.
    pub pred: PredId,
    /// The argument tuple.
    pub args: &'a [Term],
}

impl<'a> AtomRef<'a> {
    /// The arity of the atom (length of the argument tuple).
    #[inline]
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Is this atom ground (no variables)?
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| t.is_ground())
    }

    /// Is this atom a *fact* in the paper's sense (constants only)?
    pub fn is_fact(&self) -> bool {
        self.args.iter().all(|t| t.is_const())
    }

    /// `dom(α)`: the distinct ground terms of the atom in order of first
    /// occurrence.
    pub fn dom(&self) -> Vec<Term> {
        let mut out: Vec<Term> = Vec::with_capacity(self.args.len());
        for &t in self.args {
            if t.is_ground() && !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }

    /// Copies the view into an owned [`Atom`].
    pub fn to_atom(&self) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.into(),
        }
    }

    /// Applies a substitution given as a function on terms, producing an
    /// owned atom (mirrors [`Atom::map_terms`]).
    pub fn map_terms(&self, mut f: impl FnMut(Term) -> Term) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|&t| f(t)).collect(),
        }
    }
}

impl Atom {
    /// Borrows the atom as an [`AtomRef`] view.
    #[inline]
    pub fn as_ref(&self) -> AtomRef<'_> {
        AtomRef {
            pred: self.pred,
            args: &self.args,
        }
    }
}

impl PartialEq<Atom> for AtomRef<'_> {
    fn eq(&self, other: &Atom) -> bool {
        self.pred == other.pred && self.args == &other.args[..]
    }
}

impl PartialEq<AtomRef<'_>> for Atom {
    fn eq(&self, other: &AtomRef<'_>) -> bool {
        other == self
    }
}

impl From<AtomRef<'_>> for Atom {
    fn from(r: AtomRef<'_>) -> Atom {
        r.to_atom()
    }
}

impl fmt::Debug for AtomRef<'_> {
    fn fmt(&self, fmt: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fmt, "P{}(", self.pred.0)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(fmt, ",")?;
            }
            write!(fmt, "{t:?}")?;
        }
        write!(fmt, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::ConstId;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    #[test]
    fn id_tuple_matches_paper_example() {
        // t̄ = (x, y, x, z, y) → id(t̄) = (1, 2, 1, 3, 2)
        let a = Atom::new(PredId(0), vec![v(0), v(1), v(0), v(2), v(1)]);
        assert_eq!(a.id_tuple(), vec![1, 2, 1, 3, 2]);
        assert_eq!(a.unique_terms(), vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn vars_are_distinct_in_first_occurrence_order() {
        let a = Atom::new(PredId(0), vec![v(3), v(1), v(3), c(0)]);
        let vars: Vec<_> = a.vars().collect();
        assert_eq!(vars, vec![VarId(3), VarId(1)]);
        assert!(!a.is_ground());
        assert!(!a.is_fact());
    }

    #[test]
    fn dom_collects_ground_terms() {
        let a = Atom::new(PredId(0), vec![c(0), c(1), c(0)]);
        assert_eq!(a.dom(), vec![c(0), c(1)]);
        assert!(a.is_fact());
    }

    #[test]
    fn positions_of_var() {
        let a = Atom::new(PredId(0), vec![v(0), v(1), v(0)]);
        assert_eq!(a.positions_of_var(VarId(0)), vec![0, 2]);
        assert_eq!(a.positions_of_var(VarId(1)), vec![1]);
        assert_eq!(a.positions_of_var(VarId(9)), Vec::<usize>::new());
    }
}
