//! Homomorphism search: matching conjunctions of pattern atoms against an
//! instance.
//!
//! A homomorphism from a set of atoms `A` to a set of atoms `B` is a
//! substitution `h` on terms, identity on constants, with `h(α) ∈ B` for
//! all `α ∈ A` (§2). This module implements backtracking search for all
//! such `h` where `A` is a list of *pattern* atoms over dense rule-local
//! variables `0..var_count` and `B` is an [`Instance`].
//!
//! Two features matter for the chase engine:
//!
//! * **Index-driven candidates.** When a pattern atom already has a bound
//!   or ground argument, candidates come from the instance's
//!   `(pred, term)` index instead of the full predicate scan.
//! * **Semi-naive deltas.** [`for_each_hom_delta`] enumerates exactly the
//!   homomorphisms whose image uses at least one atom with index `≥
//!   delta_start`, without duplicates, via the standard pivot scheme:
//!   for each pivot position `j`, pattern `j` matches the delta, patterns
//!   before `j` match the old part, patterns after `j` match everything.
//!
//! Ground pattern terms (constants *and* nulls) must match exactly; the
//! identity-on-constants requirement of §2 is therefore built in.

use std::ops::ControlFlow;

use crate::atom::Atom;
use crate::instance::{AtomIdx, Instance};
use crate::term::Term;

/// A (partial) variable assignment for dense rule-local variables.
pub type Binding = Vec<Option<Term>>;

/// Which part of the instance a pattern atom may match.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Region {
    /// Atom indexes `< delta_start`.
    Old,
    /// Atom indexes `≥ delta_start`.
    New,
    /// The whole instance.
    All,
}

struct Search<'a, F> {
    inst: &'a Instance,
    patterns: &'a [Atom],
    regions: Vec<Region>,
    delta_start: AtomIdx,
    binding: Binding,
    callback: F,
}

impl<'a, F> Search<'a, F>
where
    F: FnMut(&Binding) -> ControlFlow<()>,
{
    /// Tries to extend the binding so that `atom` matches `pattern`;
    /// returns the trail of newly bound variables on success.
    fn unify(&mut self, pattern: &Atom, atom: &Atom) -> Option<Vec<usize>> {
        debug_assert_eq!(pattern.pred, atom.pred);
        debug_assert_eq!(pattern.arity(), atom.arity());
        let mut trail = Vec::new();
        for (&pt, &at) in pattern.args.iter().zip(atom.args.iter()) {
            match pt {
                Term::Var(v) => {
                    let slot = &mut self.binding[v.index()];
                    match slot {
                        Some(bound) => {
                            if *bound != at {
                                self.undo(&trail);
                                return None;
                            }
                        }
                        None => {
                            *slot = Some(at);
                            trail.push(v.index());
                        }
                    }
                }
                ground => {
                    if ground != at {
                        self.undo(&trail);
                        return None;
                    }
                }
            }
        }
        Some(trail)
    }

    fn undo(&mut self, trail: &[usize]) {
        for &v in trail {
            self.binding[v] = None;
        }
    }

    /// Candidate atom indexes for pattern `k` under the current binding.
    /// Returns a slice from one of the instance indexes; region filtering
    /// happens in the caller via the sortedness of index vectors.
    fn candidates(&self, k: usize) -> &'a [AtomIdx] {
        let pattern = &self.patterns[k];
        // Prefer a (pred, term) index lookup on any ground-or-bound
        // argument; the index lists are typically much shorter.
        for &t in pattern.args.iter() {
            let key = match t {
                Term::Var(v) => match self.binding[v.index()] {
                    Some(bound) => bound,
                    None => continue,
                },
                ground => ground,
            };
            return self.inst.atoms_with_pred_term(pattern.pred, key);
        }
        self.inst.atoms_with_pred(pattern.pred)
    }

    fn go(&mut self, k: usize) -> ControlFlow<()> {
        if k == self.patterns.len() {
            return (self.callback)(&self.binding);
        }
        let region = self.regions[k];
        let cands = self.candidates(k);
        // Index vectors are ascending, so region restriction is a split.
        let split = cands.partition_point(|&i| i < self.delta_start);
        let slice: &[AtomIdx] = match region {
            Region::Old => &cands[..split],
            Region::New => &cands[split..],
            Region::All => cands,
        };
        // `inst` and `patterns` live for `'a`, independent of `self`, so
        // re-borrowing them out keeps the mutable `self` calls below legal.
        let inst: &'a Instance = self.inst;
        let patterns: &'a [Atom] = self.patterns;
        let pattern = &patterns[k];
        for &idx in slice {
            let atom: &'a Atom = inst.atom(idx);
            if let Some(trail) = self.unify(pattern, atom) {
                let flow = self.go(k + 1);
                self.undo(&trail);
                flow?;
            }
        }
        ControlFlow::Continue(())
    }
}

/// Enumerates every homomorphism from `patterns` (over dense variables
/// `0..var_count`) into `inst`, invoking `callback` with the complete
/// binding. Return [`ControlFlow::Break`] from the callback to stop early.
pub fn for_each_hom(
    patterns: &[Atom],
    var_count: u32,
    inst: &Instance,
    callback: impl FnMut(&Binding) -> ControlFlow<()>,
) {
    let regions = vec![Region::All; patterns.len()];
    let mut search = Search {
        inst,
        patterns,
        regions,
        delta_start: 0,
        binding: vec![None; var_count as usize],
        callback,
    };
    let _ = search.go(0);
}

/// Enumerates every homomorphism from `patterns` into `inst` whose image
/// contains at least one atom with index `≥ delta_start`, without
/// duplicates (pivot scheme). With `delta_start == 0` this is equivalent
/// to [`for_each_hom`].
pub fn for_each_hom_delta(
    patterns: &[Atom],
    var_count: u32,
    inst: &Instance,
    delta_start: AtomIdx,
    mut callback: impl FnMut(&Binding) -> ControlFlow<()>,
) {
    if delta_start == 0 {
        for_each_hom(patterns, var_count, inst, callback);
        return;
    }
    if delta_start as usize >= inst.len() {
        return; // empty delta: nothing new can match
    }
    for pivot in 0..patterns.len() {
        // Match the pivot (delta-restricted) pattern FIRST: the delta is
        // small, and its bindings turn the remaining old/all scans into
        // index lookups. Without this reordering, rounds with tiny deltas
        // pay a full scan of the old region per round — quadratic chase.
        let mut order: Vec<usize> = Vec::with_capacity(patterns.len());
        order.push(pivot);
        order.extend((0..patterns.len()).filter(|&k| k != pivot));
        let permuted: Vec<Atom> = order.iter().map(|&k| patterns[k].clone()).collect();
        let regions: Vec<Region> = order
            .iter()
            .map(|&k| match k.cmp(&pivot) {
                std::cmp::Ordering::Less => Region::Old,
                std::cmp::Ordering::Equal => Region::New,
                std::cmp::Ordering::Greater => Region::All,
            })
            .collect();
        let mut stop = false;
        let mut search = Search {
            inst,
            patterns: &permuted,
            regions,
            delta_start,
            binding: vec![None; var_count as usize],
            callback: |b: &Binding| {
                let flow = callback(b);
                if flow.is_break() {
                    stop = true;
                }
                flow
            },
        };
        let _ = search.go(0);
        if stop {
            return;
        }
    }
}

/// Like [`for_each_hom`], but starting from a partial binding (`seed`).
/// Used e.g. by the restricted chase's activeness check, which asks for an
/// extension `h' ⊇ h|fr(σ)` mapping the head into the instance.
pub fn for_each_hom_seeded(
    patterns: &[Atom],
    seed: Binding,
    inst: &Instance,
    callback: impl FnMut(&Binding) -> ControlFlow<()>,
) {
    let regions = vec![Region::All; patterns.len()];
    let mut search = Search {
        inst,
        patterns,
        regions,
        delta_start: 0,
        binding: seed,
        callback,
    };
    let _ = search.go(0);
}

/// Does an extension of `seed` map all `patterns` into `inst`?
pub fn exists_hom_seeded(patterns: &[Atom], seed: Binding, inst: &Instance) -> bool {
    let mut found = false;
    for_each_hom_seeded(patterns, seed, inst, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// Does any homomorphism from `patterns` into `inst` exist? This is
/// Boolean conjunctive-query evaluation.
pub fn exists_hom(patterns: &[Atom], var_count: u32, inst: &Instance) -> bool {
    let mut found = false;
    for_each_hom(patterns, var_count, inst, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// Collects all homomorphisms as complete bindings. Intended for tests and
/// small inputs; the chase uses the callback APIs.
pub fn all_homs(patterns: &[Atom], var_count: u32, inst: &Instance) -> Vec<Vec<Term>> {
    let mut out = Vec::new();
    for_each_hom(patterns, var_count, inst, |b| {
        out.push(
            b.iter()
                .map(|t| t.expect("pattern variables are all bound"))
                .collect(),
        );
        ControlFlow::Continue(())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{ConstId, PredId, VarId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    fn chain_instance(n: u32) -> Instance {
        // R(c0,c1), R(c1,c2), ..., R(c_{n-1}, c_n)
        Instance::from_atoms((0..n).map(|i| atom(0, vec![c(i), c(i + 1)])))
    }

    #[test]
    fn single_atom_all_matches() {
        let inst = chain_instance(3);
        let homs = all_homs(&[atom(0, vec![v(0), v(1)])], 2, &inst);
        assert_eq!(homs.len(), 3);
    }

    #[test]
    fn join_two_atoms() {
        let inst = chain_instance(3);
        // R(x,y), R(y,z): paths of length 2 → (c0,c1,c2), (c1,c2,c3).
        let pats = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let homs = all_homs(&pats, 3, &inst);
        assert_eq!(homs.len(), 2);
        assert!(homs.contains(&vec![c(0), c(1), c(2)]));
        assert!(homs.contains(&vec![c(1), c(2), c(3)]));
    }

    #[test]
    fn repeated_variable_forces_equality() {
        let mut inst = chain_instance(2);
        inst.insert(atom(0, vec![c(5), c(5)]));
        let homs = all_homs(&[atom(0, vec![v(0), v(0)])], 1, &inst);
        assert_eq!(homs, vec![vec![c(5)]]);
    }

    #[test]
    fn ground_pattern_terms_must_match_exactly() {
        let inst = chain_instance(3);
        let homs = all_homs(&[atom(0, vec![c(1), v(0)])], 1, &inst);
        assert_eq!(homs, vec![vec![c(2)]]);
        assert!(!exists_hom(&[atom(0, vec![c(9), v(0)])], 1, &inst));
    }

    #[test]
    fn delta_enumeration_is_exact_and_duplicate_free() {
        // Build instance in two stages; delta = atoms added second.
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(0, vec![c(1), c(2)]));
        let delta_start = inst.len() as AtomIdx;
        inst.insert(atom(0, vec![c(2), c(3)]));

        let pats = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let mut delta_homs = Vec::new();
        for_each_hom_delta(&pats, 3, &inst, delta_start, |b| {
            delta_homs.push(b.clone());
            ControlFlow::Continue(())
        });
        // Full homs: (0,1,2), (1,2,3). Only (1,2,3) touches the delta.
        assert_eq!(delta_homs.len(), 1);
        assert_eq!(
            delta_homs[0],
            vec![Some(c(1)), Some(c(2)), Some(c(3))]
        );
    }

    #[test]
    fn delta_with_full_range_equals_plain_enumeration() {
        let inst = chain_instance(5);
        let pats = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let mut plain = 0;
        for_each_hom(&pats, 3, &inst, |_| {
            plain += 1;
            ControlFlow::Continue(())
        });
        let mut delta = 0;
        for_each_hom_delta(&pats, 3, &inst, 0, |_| {
            delta += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(plain, delta);
    }

    #[test]
    fn delta_counts_match_difference_of_full_runs() {
        // Homs(full) − Homs(old) must equal delta enumeration count.
        let mut old = Instance::new();
        for i in 0..4 {
            old.insert(atom(0, vec![c(i), c(i + 1)]));
        }
        let delta_start = old.len() as AtomIdx;
        let mut full = old.clone();
        full.insert(atom(0, vec![c(4), c(5)]));
        full.insert(atom(0, vec![c(0), c(3)]));

        let pats = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let count = |inst: &Instance| {
            let mut n = 0;
            for_each_hom(&pats, 3, inst, |_| {
                n += 1;
                ControlFlow::Continue(())
            });
            n
        };
        let mut delta_count = 0;
        for_each_hom_delta(&pats, 3, &full, delta_start, |_| {
            delta_count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count(&full) - count(&old), delta_count);
    }

    #[test]
    fn early_break_stops_enumeration() {
        let inst = chain_instance(50);
        let mut seen = 0;
        for_each_hom(&[atom(0, vec![v(0), v(1)])], 2, &inst, |_| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert_eq!(seen, 1);
    }
}
