//! Homomorphism search: matching conjunctions of pattern atoms against an
//! instance.
//!
//! A homomorphism from a set of atoms `A` to a set of atoms `B` is a
//! substitution `h` on terms, identity on constants, with `h(α) ∈ B` for
//! all `α ∈ A` (§2). The search itself lives in [`crate::plan`]: a
//! [`MatchPlan`] compiles a pattern conjunction once (pivot permutations,
//! region vectors, probe positions) and executes against caller-owned
//! [`Scratch`] state with zero allocations per candidate. Hot callers —
//! the chase engine, [`crate::Cq`] — hold a compiled plan; the free
//! functions in this module compile on the fly and exist for tests,
//! one-shot callers, and API compatibility.
//!
//! Ground pattern terms (constants *and* nulls) must match exactly; the
//! identity-on-constants requirement of §2 is therefore built in.
//!
//! The [`naive`] submodule contains a deliberately index-free,
//! plan-free reference enumerator used by the differential property
//! tests to validate the compiled search.

use std::ops::ControlFlow;

use crate::atom::Atom;
use crate::instance::{AtomIdx, Instance};
use crate::plan::{MatchPlan, Scratch};
use crate::term::Term;

/// A (partial) variable assignment for dense rule-local variables.
pub type Binding = Vec<Option<Term>>;

/// Enumerates every homomorphism from `patterns` (over dense variables
/// `0..var_count`) into `inst`, invoking `callback` with the complete
/// binding. Return [`ControlFlow::Break`] from the callback to stop early.
pub fn for_each_hom(
    patterns: &[Atom],
    var_count: u32,
    inst: &Instance,
    callback: impl FnMut(&[Option<Term>]) -> ControlFlow<()>,
) {
    let plan = MatchPlan::compile_scan(patterns, var_count);
    plan.for_each_hom(inst, &mut Scratch::new(), callback);
}

/// Enumerates every homomorphism from `patterns` into `inst` whose image
/// contains at least one atom with index `≥ delta_start`, without
/// duplicates (pivot scheme). With `delta_start == 0` this is equivalent
/// to [`for_each_hom`].
pub fn for_each_hom_delta(
    patterns: &[Atom],
    var_count: u32,
    inst: &Instance,
    delta_start: AtomIdx,
    callback: impl FnMut(&[Option<Term>]) -> ControlFlow<()>,
) {
    let plan = MatchPlan::compile(patterns, var_count);
    plan.for_each_hom_delta(inst, delta_start, &mut Scratch::new(), callback);
}

/// Like [`for_each_hom`], but starting from a partial binding (`seed`).
/// Used e.g. by the restricted chase's activeness check, which asks for an
/// extension `h' ⊇ h|fr(σ)` mapping the head into the instance.
pub fn for_each_hom_seeded(
    patterns: &[Atom],
    seed: Binding,
    inst: &Instance,
    callback: impl FnMut(&[Option<Term>]) -> ControlFlow<()>,
) {
    let plan = MatchPlan::compile_scan(patterns, seed.len() as u32);
    plan.for_each_hom_seeded(inst, &seed, &mut Scratch::new(), callback);
}

/// Does an extension of `seed` map all `patterns` into `inst`?
pub fn exists_hom_seeded(patterns: &[Atom], seed: Binding, inst: &Instance) -> bool {
    let plan = MatchPlan::compile_scan(patterns, seed.len() as u32);
    plan.exists_hom_seeded(inst, &seed, &mut Scratch::new())
}

/// Does any homomorphism from `patterns` into `inst` exist? This is
/// Boolean conjunctive-query evaluation.
pub fn exists_hom(patterns: &[Atom], var_count: u32, inst: &Instance) -> bool {
    let mut found = false;
    for_each_hom(patterns, var_count, inst, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// Collects all homomorphisms as complete bindings. Intended for tests and
/// small inputs; the chase uses the callback APIs.
pub fn all_homs(patterns: &[Atom], var_count: u32, inst: &Instance) -> Vec<Vec<Term>> {
    let mut out = Vec::new();
    for_each_hom(patterns, var_count, inst, |b| {
        out.push(
            b.iter()
                .map(|t| t.expect("pattern variables are all bound"))
                .collect(),
        );
        ControlFlow::Continue(())
    });
    out
}

/// A reference hom-enumerator with **no indexes and no plans**: every
/// pattern scans every atom of the instance. Exponentially slower than
/// the compiled search, and exactly as correct — which is the point: the
/// differential property tests assert that [`MatchPlan`] enumerates the
/// identical hom set on randomly generated instances.
pub mod naive {
    use super::*;

    fn go(
        patterns: &[Atom],
        k: usize,
        inst: &Instance,
        binding: &mut [Option<Term>],
        image: &mut Vec<AtomIdx>,
        emit: &mut impl FnMut(&[Option<Term>], &[AtomIdx]),
    ) {
        if k == patterns.len() {
            emit(binding, image);
            return;
        }
        let pattern = &patterns[k];
        // Full scan: no index, no candidate selection.
        for idx in 0..inst.len() as AtomIdx {
            let atom = inst.atom(idx);
            if atom.pred != pattern.pred || atom.args.len() != pattern.args.len() {
                continue;
            }
            let mut trail: Vec<usize> = Vec::new();
            let mut ok = true;
            for (&pt, &at) in pattern.args.iter().zip(atom.args.iter()) {
                match pt {
                    Term::Var(v) => match binding[v.index()] {
                        Some(bound) => {
                            if bound != at {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            binding[v.index()] = Some(at);
                            trail.push(v.index());
                        }
                    },
                    ground => {
                        if ground != at {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                image.push(idx);
                go(patterns, k + 1, inst, binding, image, emit);
                image.pop();
            }
            for v in trail {
                binding[v] = None;
            }
        }
    }

    /// Enumerates all homomorphisms by brute force, in some order.
    pub fn for_each_hom_naive(
        patterns: &[Atom],
        var_count: u32,
        inst: &Instance,
        mut callback: impl FnMut(&[Option<Term>]),
    ) {
        let mut binding = vec![None; var_count as usize];
        let mut image = Vec::new();
        go(patterns, 0, inst, &mut binding, &mut image, &mut |b, _| {
            callback(b)
        });
    }

    /// Enumerates by brute force exactly the homomorphisms whose image
    /// contains at least one atom with index `≥ delta_start` (the
    /// specification of the compiled pivot scheme).
    pub fn for_each_hom_delta_naive(
        patterns: &[Atom],
        var_count: u32,
        inst: &Instance,
        delta_start: AtomIdx,
        mut callback: impl FnMut(&[Option<Term>]),
    ) {
        let mut binding = vec![None; var_count as usize];
        let mut image = Vec::new();
        go(
            patterns,
            0,
            inst,
            &mut binding,
            &mut image,
            &mut |b, image| {
                if image.iter().any(|&i| i >= delta_start) {
                    callback(b);
                }
            },
        );
    }

    /// Collects all brute-force homomorphisms as complete bindings.
    pub fn all_homs_naive(patterns: &[Atom], var_count: u32, inst: &Instance) -> Vec<Vec<Term>> {
        let mut out = Vec::new();
        for_each_hom_naive(patterns, var_count, inst, |b| {
            out.push(
                b.iter()
                    .map(|t| t.expect("pattern variables are all bound"))
                    .collect(),
            );
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{ConstId, PredId, VarId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    fn chain_instance(n: u32) -> Instance {
        // R(c0,c1), R(c1,c2), ..., R(c_{n-1}, c_n)
        Instance::from_atoms((0..n).map(|i| atom(0, vec![c(i), c(i + 1)])))
    }

    #[test]
    fn single_atom_all_matches() {
        let inst = chain_instance(3);
        let homs = all_homs(&[atom(0, vec![v(0), v(1)])], 2, &inst);
        assert_eq!(homs.len(), 3);
    }

    #[test]
    fn join_two_atoms() {
        let inst = chain_instance(3);
        // R(x,y), R(y,z): paths of length 2 → (c0,c1,c2), (c1,c2,c3).
        let pats = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let homs = all_homs(&pats, 3, &inst);
        assert_eq!(homs.len(), 2);
        assert!(homs.contains(&vec![c(0), c(1), c(2)]));
        assert!(homs.contains(&vec![c(1), c(2), c(3)]));
    }

    #[test]
    fn repeated_variable_forces_equality() {
        let mut inst = chain_instance(2);
        inst.insert(atom(0, vec![c(5), c(5)]));
        let homs = all_homs(&[atom(0, vec![v(0), v(0)])], 1, &inst);
        assert_eq!(homs, vec![vec![c(5)]]);
    }

    #[test]
    fn ground_pattern_terms_must_match_exactly() {
        let inst = chain_instance(3);
        let homs = all_homs(&[atom(0, vec![c(1), v(0)])], 1, &inst);
        assert_eq!(homs, vec![vec![c(2)]]);
        assert!(!exists_hom(&[atom(0, vec![c(9), v(0)])], 1, &inst));
    }

    #[test]
    fn delta_enumeration_is_exact_and_duplicate_free() {
        // Build instance in two stages; delta = atoms added second.
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(0, vec![c(1), c(2)]));
        let delta_start = inst.len() as AtomIdx;
        inst.insert(atom(0, vec![c(2), c(3)]));

        let pats = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let mut delta_homs = Vec::new();
        for_each_hom_delta(&pats, 3, &inst, delta_start, |b| {
            delta_homs.push(b.to_vec());
            ControlFlow::Continue(())
        });
        // Full homs: (0,1,2), (1,2,3). Only (1,2,3) touches the delta.
        assert_eq!(delta_homs.len(), 1);
        assert_eq!(delta_homs[0], vec![Some(c(1)), Some(c(2)), Some(c(3))]);
    }

    #[test]
    fn delta_with_full_range_equals_plain_enumeration() {
        let inst = chain_instance(5);
        let pats = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let mut plain = 0;
        for_each_hom(&pats, 3, &inst, |_| {
            plain += 1;
            ControlFlow::Continue(())
        });
        let mut delta = 0;
        for_each_hom_delta(&pats, 3, &inst, 0, |_| {
            delta += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(plain, delta);
    }

    #[test]
    fn delta_counts_match_difference_of_full_runs() {
        // Homs(full) − Homs(old) must equal delta enumeration count.
        let mut old = Instance::new();
        for i in 0..4 {
            old.insert(atom(0, vec![c(i), c(i + 1)]));
        }
        let delta_start = old.len() as AtomIdx;
        let mut full = old.clone();
        full.insert(atom(0, vec![c(4), c(5)]));
        full.insert(atom(0, vec![c(0), c(3)]));

        let pats = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let count = |inst: &Instance| {
            let mut n = 0;
            for_each_hom(&pats, 3, inst, |_| {
                n += 1;
                ControlFlow::Continue(())
            });
            n
        };
        let mut delta_count = 0;
        for_each_hom_delta(&pats, 3, &full, delta_start, |_| {
            delta_count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count(&full) - count(&old), delta_count);
    }

    #[test]
    fn early_break_stops_enumeration() {
        let inst = chain_instance(50);
        let mut seen = 0;
        for_each_hom(&[atom(0, vec![v(0), v(1)])], 2, &inst, |_| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn naive_enumerator_agrees_on_a_join() {
        let inst = chain_instance(6);
        let pats = [atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])];
        let mut compiled = all_homs(&pats, 3, &inst);
        let mut brute = naive::all_homs_naive(&pats, 3, &inst);
        compiled.sort();
        brute.sort();
        assert_eq!(compiled, brute);
    }
}
