//! Pretty-printing of atoms, instances, TGDs, and queries against a
//! [`SymbolTable`].
//!
//! Display needs the symbol table to resolve names, so the API is
//! wrapper-based: `x.display(&symbols)` returns a value implementing
//! [`std::fmt::Display`]. Rule-local (normalized) variables print as
//! `X0, X1, …`; nulls print as `_:n<id>` (RDF-style blank-node syntax).

use std::fmt;

use crate::atom::Atom;
use crate::instance::Instance;
use crate::query::{Cq, Ucq};
use crate::symbols::SymbolTable;
use crate::term::Term;
use crate::tgd::{Tgd, TgdSet};

/// Something printable against a symbol table.
pub trait DisplayWith {
    /// Writes `self` using names from `symbols`.
    fn fmt_with(&self, symbols: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Returns a displayable wrapper borrowing `self` and the table.
    fn display<'a>(&'a self, symbols: &'a SymbolTable) -> Displayed<'a, Self>
    where
        Self: Sized,
    {
        Displayed {
            value: self,
            symbols,
        }
    }
}

/// Wrapper implementing [`fmt::Display`] for a [`DisplayWith`] value.
pub struct Displayed<'a, T> {
    value: &'a T,
    symbols: &'a SymbolTable,
}

impl<T: DisplayWith> fmt::Display for Displayed<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt_with(self.symbols, f)
    }
}

impl DisplayWith for Term {
    fn fmt_with(&self, symbols: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => {
                let name = symbols.const_name(*c);
                if name
                    .chars()
                    .all(|ch| ch.is_ascii_alphanumeric() || ch == '_')
                    && !name.is_empty()
                    && !name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                {
                    write!(f, "{name}")
                } else {
                    write!(f, "'{name}'")
                }
            }
            Term::Null(n) => write!(f, "_:n{}", n.0),
            Term::Var(v) => write!(f, "X{}", v.0),
        }
    }
}

impl DisplayWith for Atom {
    fn fmt_with(&self, symbols: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_ref().fmt_with(symbols, f)
    }
}

impl DisplayWith for crate::atom::AtomRef<'_> {
    fn fmt_with(&self, symbols: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", symbols.pred_name(self.pred))?;
        if self.args.is_empty() {
            return Ok(());
        }
        write!(f, "(")?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            t.fmt_with(symbols, f)?;
        }
        write!(f, ")")
    }
}

impl DisplayWith for Instance {
    fn fmt_with(&self, symbols: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for atom in self.iter() {
            atom.fmt_with(symbols, f)?;
            writeln!(f, ".")?;
        }
        Ok(())
    }
}

impl DisplayWith for Tgd {
    fn fmt_with(&self, symbols: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.body().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            a.fmt_with(symbols, f)?;
        }
        write!(f, " -> ")?;
        if !self.existentials().is_empty() {
            write!(f, "exists ")?;
            for (i, v) in self.existentials().iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "X{}", v.0)?;
            }
            write!(f, " : ")?;
        }
        for (i, a) in self.head().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            a.fmt_with(symbols, f)?;
        }
        Ok(())
    }
}

impl DisplayWith for TgdSet {
    fn fmt_with(&self, symbols: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (_, tgd) in self.iter() {
            tgd.fmt_with(symbols, f)?;
            writeln!(f, ".")?;
        }
        Ok(())
    }
}

impl DisplayWith for Cq {
    fn fmt_with(&self, symbols: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.atoms().iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            a.fmt_with(symbols, f)?;
        }
        Ok(())
    }
}

impl DisplayWith for Ucq {
    fn fmt_with(&self, symbols: &SymbolTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "false");
        }
        for (i, q) in self.disjuncts().iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "(")?;
            q.fmt_with(symbols, f)?;
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn atoms_and_rules_round_trip_structurally() {
        let text = "r(a, b).\nr(X, Y) -> exists Z : r(Y, Z), s(Z).\n";
        let p1 = parse_program(text).unwrap();
        let printed = format!(
            "{}{}",
            p1.database.display(&p1.symbols),
            p1.tgds.display(&p1.symbols)
        );
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1.database.len(), p2.database.len());
        assert_eq!(p1.tgds.len(), p2.tgds.len());
        // Normalized rules are structurally identical.
        for ((_, a), (_, b)) in p1.tgds.iter().zip(p2.tgds.iter()) {
            assert_eq!(a.body(), b.body());
            assert_eq!(a.head(), b.head());
        }
    }

    #[test]
    fn nulls_print_as_blank_nodes() {
        use crate::symbols::{NullId, PredId};
        let symbols = {
            let mut s = SymbolTable::new();
            s.pred("r", 1).unwrap();
            s
        };
        let atom = Atom::new(PredId(0), vec![Term::Null(NullId(7))]);
        assert_eq!(format!("{}", atom.display(&symbols)), "r(_:n7)");
    }

    #[test]
    fn odd_constants_are_quoted() {
        let mut symbols = SymbolTable::new();
        symbols.pred("r", 1).unwrap();
        let c = symbols.constant("Alice Smith");
        let atom = Atom::new(crate::symbols::PredId(0), vec![Term::Const(c)]);
        assert_eq!(format!("{}", atom.display(&symbols)), "r('Alice Smith')");
    }

    #[test]
    fn empty_ucq_prints_false() {
        let symbols = SymbolTable::new();
        assert_eq!(format!("{}", Ucq::default().display(&symbols)), "false");
    }
}
