//! Compiled match plans: the query-compilation layer of the hom search.
//!
//! The chase evaluates the same rule bodies millions of times, so
//! everything that can be decided *per rule* must not be recomputed *per
//! candidate atom*. A [`MatchPlan`] compiles a pattern conjunction once —
//! at `Tgd`/`Cq` construction — into:
//!
//! * the **full-enumeration stage** (patterns in given order, whole
//!   instance), and
//! * one **pivot stage per pattern** for semi-naive delta enumeration:
//!   the pivot pattern (restricted to the delta) is matched first, the
//!   patterns before it against the old region, the rest against
//!   everything — the standard duplicate-free pivot scheme, with the
//!   permuted pattern lists and `Region` vectors precomputed instead of
//!   cloned per round;
//! * **position-keyed index probing**: at runtime the search probes the
//!   `(pred, position, term)` posting list of every argument position
//!   whose term is ground or already bound, and scans the *most
//!   selective* (shortest) list, rather than the first bound argument.
//!   Because the index keys on the position, a candidate list never
//!   contains atoms that mention the bound term only in a different
//!   argument slot;
//! * **region partitioning** for parallel fan-out: the pivot stages are
//!   individually addressable ([`MatchPlan::for_each_hom_pivot`]) and
//!   the delta region splits into contiguous windows ([`delta_windows`]),
//!   so `(rule, pivot, window)` task units partition the delta
//!   homomorphisms exactly — disjointly and exhaustively — across
//!   worker threads.
//!
//! The backtracking state lives in a caller-owned [`Scratch`] (binding
//! slots + a single undo trail with per-depth marks), so the inner search
//! loop performs **zero heap allocations per candidate** — no trail
//! `Vec`s, no pattern clones, no binding copies.

use std::ops::ControlFlow;

use crate::atom::Atom;
use crate::instance::{AtomIdx, Instance};
use crate::symbols::{PredId, VarId};
use crate::term::Term;

/// Which part of the instance a pattern atom may match during semi-naive
/// enumeration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Region {
    /// Atom indexes `< delta_start`.
    Old,
    /// Atom indexes `≥ delta_start`.
    New,
    /// The whole instance.
    All,
}

/// One pattern to match, with its region. Every argument position is a
/// usable probe under the position-keyed index (even a repeated variable
/// keys *different* lists at its different positions), so no probe list
/// is precomputed.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Step {
    pattern: Atom,
    region: Region,
}

impl Step {
    fn new(pattern: &Atom, region: Region) -> Step {
        Step {
            pattern: pattern.clone(),
            region,
        }
    }
}

/// Reusable scratch state for plan execution: the variable binding and the
/// backtracking trail. One `Scratch` serves any number of searches (and
/// any number of plans); reusing it across calls is what makes the search
/// allocation-free after warm-up.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    binding: Vec<Option<Term>>,
    trail: Vec<u32>,
}

impl Scratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the first `var_count` binding slots and sizes the buffers.
    fn prepare(&mut self, var_count: u32) {
        let n = var_count as usize;
        self.binding.clear();
        self.binding.resize(n, None);
        self.trail.clear();
    }
}

/// Where a keyed argument position's term comes from when a lane program
/// runs: a ground pattern term, or the value of a variable bound by an
/// earlier step (read from that variable's frontier column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum KeySource {
    /// A ground term in the pattern itself.
    Ground(Term),
    /// A variable bound by an earlier step of the same program.
    Var(u32),
}

/// One step of a compiled **lane program** — the batch (columnar)
/// counterpart of [`Step`]. Where the backtracking search classifies a
/// pattern's argument positions *per candidate* (probe the bound ones,
/// bind the free ones), the lane program fixes the classification at
/// compile time, because which variables are bound at step `k` depends
/// only on steps `0..k`, never on the data:
///
/// * `keys` — positions whose term is known before the step runs (ground,
///   or a variable bound earlier). Their `(pred, position, term)` posting
///   lists are *intersected* to produce the candidate set; posting lists
///   are position-exact, so keyed positions need no re-verification.
/// * `binds` — first occurrences of free variables: the candidate atom's
///   argument is written to the variable's frontier column.
/// * `self_eqs` — repeated occurrences of a variable *first bound by this
///   very step*: checked intra-atom (`args[pos] == args[first]`), the one
///   constraint list membership cannot express.
/// * `carry` — variables bound before this step, whose column values the
///   surviving rows copy forward.
#[derive(Clone, PartialEq, Eq, Debug)]
struct LaneStep {
    pred: PredId,
    region: Region,
    keys: Vec<(u32, KeySource)>,
    binds: Vec<(u32, u32)>,
    self_eqs: Vec<(u32, u32)>,
    carry: Vec<u32>,
}

/// A compiled match plan for a pattern conjunction over dense rule-local
/// variables `0..var_count`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MatchPlan {
    var_count: u32,
    /// Patterns in given order, [`Region::All`] — full enumeration.
    full: Vec<Step>,
    /// `pivots[j]`: pattern `j` first (restricted to the delta), patterns
    /// `< j` against the old region, patterns `> j` against everything.
    pivots: Vec<Vec<Step>>,
    /// The lane program of each pivot stage — the batch enumeration
    /// counterpart of `pivots`, same stage order.
    lane_pivots: Vec<Vec<LaneStep>>,
    /// Is variable `v` bound by the patterns (occurs in some body atom)?
    /// Unbound slots (head existentials sharing the dense id space) emit
    /// their placeholder in [`BindingBlock::read_row`].
    lane_bound: Vec<bool>,
}

impl MatchPlan {
    /// Compiles a plan with delta stages. `patterns` use dense variable
    /// ids `0..var_count`.
    pub fn compile(patterns: &[Atom], var_count: u32) -> MatchPlan {
        let mut plan = MatchPlan::compile_scan(patterns, var_count);
        plan.pivots = (0..patterns.len())
            .map(|pivot| {
                // Match the pivot (delta-restricted) pattern FIRST: the
                // delta is small, and its bindings turn the remaining
                // old/all scans into index lookups.
                let mut steps = Vec::with_capacity(patterns.len());
                steps.push(Step::new(&patterns[pivot], Region::New));
                for (k, p) in patterns.iter().enumerate() {
                    if k != pivot {
                        let region = if k < pivot { Region::Old } else { Region::All };
                        steps.push(Step::new(p, region));
                    }
                }
                steps
            })
            .collect();
        plan.lane_pivots = plan
            .pivots
            .iter()
            .map(|steps| compile_lane_steps(steps, var_count))
            .collect();
        plan.lane_bound = vec![false; var_count as usize];
        for p in patterns {
            for t in &p.args {
                if let Term::Var(v) = t {
                    plan.lane_bound[v.index()] = true;
                }
            }
        }
        plan
    }

    /// Compiles a full-enumeration-only plan — no per-pivot delta stages.
    /// Use for plans that only ever run [`MatchPlan::for_each_hom`] /
    /// [`MatchPlan::for_each_hom_seeded`] (query evaluation, head
    /// matching): skipping the pivot permutations makes construction
    /// linear instead of quadratic in the pattern count. Calling
    /// [`MatchPlan::for_each_hom_delta`] with a nonzero `delta_start` on
    /// such a plan panics.
    pub fn compile_scan(patterns: &[Atom], var_count: u32) -> MatchPlan {
        debug_assert!(
            patterns
                .iter()
                .flat_map(|p| p.args.iter())
                .all(|t| t.as_var().is_none_or(|v| v.0 < var_count)),
            "pattern variables must be dense in 0..var_count"
        );
        let full: Vec<Step> = patterns.iter().map(|p| Step::new(p, Region::All)).collect();
        MatchPlan {
            var_count,
            full,
            pivots: Vec::new(),
            lane_pivots: Vec::new(),
            lane_bound: Vec::new(),
        }
    }

    /// Number of dense variables the plan binds.
    pub fn var_count(&self) -> u32 {
        self.var_count
    }

    /// The number of patterns in the conjunction.
    pub fn pattern_count(&self) -> usize {
        self.full.len()
    }

    /// Enumerates every homomorphism from the compiled patterns into
    /// `inst`, invoking `callback` with the complete binding (indexed by
    /// dense variable id). Return [`ControlFlow::Break`] to stop early.
    pub fn for_each_hom(
        &self,
        inst: &Instance,
        scratch: &mut Scratch,
        mut callback: impl FnMut(&[Option<Term>]) -> ControlFlow<()>,
    ) {
        scratch.prepare(self.var_count);
        let mut search = Search {
            inst,
            steps: &self.full,
            delta_start: 0,
            new_lo: 0,
            new_hi: AtomIdx::MAX,
            binding: &mut scratch.binding,
            trail: &mut scratch.trail,
            callback: &mut callback,
        };
        let _ = search.go(0);
    }

    /// Enumerates every homomorphism whose image contains at least one
    /// atom with index `≥ delta_start`, without duplicates (pivot
    /// scheme). With `delta_start == 0` this equals
    /// [`MatchPlan::for_each_hom`].
    pub fn for_each_hom_delta(
        &self,
        inst: &Instance,
        delta_start: AtomIdx,
        scratch: &mut Scratch,
        mut callback: impl FnMut(&[Option<Term>]) -> ControlFlow<()>,
    ) {
        if delta_start == 0 {
            self.for_each_hom(inst, scratch, callback);
            return;
        }
        if delta_start as usize >= inst.len() {
            return; // empty delta: nothing new can match
        }
        assert!(
            self.pivots.len() == self.full.len(),
            "delta enumeration on a plan compiled with MatchPlan::compile_scan"
        );
        for steps in &self.pivots {
            scratch.prepare(self.var_count);
            let mut search = Search {
                inst,
                steps,
                delta_start,
                new_lo: delta_start,
                new_hi: AtomIdx::MAX,
                binding: &mut scratch.binding,
                trail: &mut scratch.trail,
                callback: &mut callback,
            };
            if search.go(0).is_break() {
                return;
            }
        }
    }

    /// The number of pivot stages compiled for delta enumeration (equals
    /// [`MatchPlan::pattern_count`] for [`MatchPlan::compile`]d plans, 0
    /// for scan-only plans).
    pub fn pivot_count(&self) -> usize {
        self.pivots.len()
    }

    /// Runs a single pivot stage of the delta enumeration, with the pivot
    /// pattern's candidates restricted to atom indexes in
    /// `window = [lo, hi)` (which must lie within the delta
    /// `[delta_start, len)`).
    ///
    /// This is the parallel executor's task unit: for a fixed
    /// `delta_start`, the homomorphism sets produced by
    /// `(pivot, window)` over all pivot stages and a disjoint cover of
    /// the delta by windows partition exactly the homomorphisms of
    /// [`MatchPlan::for_each_hom_delta`] — same set, and concatenating in
    /// `(pivot, window.lo)` order reproduces the same enumeration order.
    /// With `delta_start == 0` only pivot 0 yields homomorphisms (every
    /// later stage requires a match in the then-empty old region), and
    /// pivot 0 windowed over `[0, len)` partitions the full enumeration.
    ///
    /// # Panics
    /// Panics on plans compiled with [`MatchPlan::compile_scan`].
    pub fn for_each_hom_pivot(
        &self,
        inst: &Instance,
        delta_start: AtomIdx,
        pivot: usize,
        window: (AtomIdx, AtomIdx),
        scratch: &mut Scratch,
        mut callback: impl FnMut(&[Option<Term>]) -> ControlFlow<()>,
    ) {
        assert!(
            self.pivots.len() == self.full.len(),
            "pivot enumeration on a plan compiled with MatchPlan::compile_scan"
        );
        debug_assert!(window.0 >= delta_start, "window must lie in the delta");
        if window.0 >= window.1 {
            return;
        }
        scratch.prepare(self.var_count);
        let mut search = Search {
            inst,
            steps: &self.pivots[pivot],
            delta_start,
            new_lo: window.0,
            new_hi: window.1,
            binding: &mut scratch.binding,
            trail: &mut scratch.trail,
            callback: &mut callback,
        };
        let _ = search.go(0);
    }

    /// Like [`MatchPlan::for_each_hom`], but starting from a partial
    /// binding: `seed[v] = Some(t)` pins variable `v` to `t`. Used e.g. by
    /// the restricted chase's activeness check, which asks for an
    /// extension `h' ⊇ h|fr(σ)` mapping the head into the instance.
    pub fn for_each_hom_seeded(
        &self,
        inst: &Instance,
        seed: &[Option<Term>],
        scratch: &mut Scratch,
        mut callback: impl FnMut(&[Option<Term>]) -> ControlFlow<()>,
    ) {
        scratch.prepare(self.var_count);
        scratch.binding[..seed.len()].copy_from_slice(seed);
        let mut search = Search {
            inst,
            steps: &self.full,
            delta_start: 0,
            new_lo: 0,
            new_hi: AtomIdx::MAX,
            binding: &mut scratch.binding,
            trail: &mut scratch.trail,
            callback: &mut callback,
        };
        let _ = search.go(0);
    }

    /// Does an extension of `seed` map all patterns into `inst`?
    pub fn exists_hom_seeded(
        &self,
        inst: &Instance,
        seed: &[Option<Term>],
        scratch: &mut Scratch,
    ) -> bool {
        let mut found = false;
        self.for_each_hom_seeded(inst, seed, scratch, |_| {
            found = true;
            ControlFlow::Break(())
        });
        found
    }

    /// The **batch** counterpart of [`MatchPlan::for_each_hom_pivot`]:
    /// runs the pivot stage's compiled lane program, materializing
    /// complete bindings into block-sized columnar buffers and invoking
    /// `on_block` once per block instead of once per homomorphism.
    ///
    /// The execution is breadth-first per block: the pivot's candidate
    /// atoms (window-clipped, ascending) are chunked; each chunk's rows
    /// cascade level by level, every level computing its candidates by
    /// posting-list **intersection** ([`Instance::intersect_pred_term_at`])
    /// over the step's keyed positions — galloping sorted-merge, the
    /// variable-at-a-time intersection of worst-case-optimal join
    /// evaluation — rather than per-candidate probe-and-unify.
    ///
    /// # Equivalence with the backtracking search
    ///
    /// The rows delivered across blocks are exactly the bindings
    /// [`MatchPlan::for_each_hom_pivot`] yields, **in the same order**:
    /// rows are processed in frontier order and candidates appended
    /// ascending, so the block rows enumerate the search tree's leaves in
    /// lexicographic path order — precisely the depth-first visit order —
    /// and a step's intersection equals the search's
    /// shortest-list-scan-plus-unification filter (posting lists are
    /// position-exact; intra-atom repeats are the `self_eqs` checks).
    /// Pinned by the order-and-content equality tests below.
    ///
    /// # Panics
    /// Panics on plans compiled with [`MatchPlan::compile_scan`].
    pub fn for_each_hom_pivot_batch(
        &self,
        inst: &Instance,
        delta_start: AtomIdx,
        pivot: usize,
        window: (AtomIdx, AtomIdx),
        bs: &mut BatchScratch,
        mut on_block: impl FnMut(&BindingBlock<'_>) -> ControlFlow<()>,
    ) {
        assert!(
            self.lane_pivots.len() == self.full.len(),
            "batch enumeration on a plan compiled with MatchPlan::compile_scan"
        );
        debug_assert!(window.0 >= delta_start, "window must lie in the delta");
        let _ = self.batch_pivot_sized(
            inst,
            delta_start,
            pivot,
            window,
            BATCH_BLOCK,
            bs,
            &mut on_block,
        );
    }

    /// The batch counterpart of [`MatchPlan::for_each_hom_delta`]: the
    /// full delta sweep (all pivot stages, in stage order) through the
    /// lane programs, delivering the same bindings in the same order as
    /// the backtracking sweep. With `delta_start == 0` only pivot 0 runs,
    /// windowed over the whole instance — which partitions the full
    /// enumeration (see [`MatchPlan::for_each_hom_pivot`]).
    ///
    /// # Panics
    /// Panics on plans compiled with [`MatchPlan::compile_scan`] (when
    /// the delta is nonempty).
    pub fn for_each_hom_delta_batch(
        &self,
        inst: &Instance,
        delta_start: AtomIdx,
        bs: &mut BatchScratch,
        mut on_block: impl FnMut(&BindingBlock<'_>) -> ControlFlow<()>,
    ) {
        let len = inst.len() as AtomIdx;
        if delta_start >= len {
            return; // empty delta: nothing new can match
        }
        assert!(
            self.lane_pivots.len() == self.full.len(),
            "batch enumeration on a plan compiled with MatchPlan::compile_scan"
        );
        if delta_start == 0 {
            let _ = self.batch_pivot_sized(inst, 0, 0, (0, len), BATCH_BLOCK, bs, &mut on_block);
            return;
        }
        for pivot in 0..self.lane_pivots.len() {
            let window = (delta_start, len);
            if self
                .batch_pivot_sized(
                    inst,
                    delta_start,
                    pivot,
                    window,
                    BATCH_BLOCK,
                    bs,
                    &mut on_block,
                )
                .is_break()
            {
                return;
            }
        }
    }

    /// The lane-program executor behind the batch entry points, with an
    /// explicit block size (the tests shrink it to cross block
    /// boundaries on small instances).
    #[allow(clippy::too_many_arguments)]
    fn batch_pivot_sized(
        &self,
        inst: &Instance,
        delta_start: AtomIdx,
        pivot: usize,
        window: (AtomIdx, AtomIdx),
        block_size: usize,
        bs: &mut BatchScratch,
        on_block: &mut dyn FnMut(&BindingBlock<'_>) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if window.0 >= window.1 {
            return ControlFlow::Continue(());
        }
        let prog = &self.lane_pivots[pivot];
        bs.prepare(self.var_count);
        let BatchScratch {
            level0,
            isect,
            isect_tmp,
            key_terms,
            bind_vals,
            cols,
        } = bs;

        // Level 0 — the pivot step: its keys can only be ground (no
        // variable is bound before the first step), so the candidate set
        // is computed once for the whole window.
        let step0 = &prog[0];
        key_terms.clear();
        for &(pos, src) in &step0.keys {
            match src {
                KeySource::Ground(t) => key_terms.push((pos, t)),
                KeySource::Var(_) => unreachable!("no variable is bound before step 0"),
            }
        }
        inst.intersect_pred_term_at(step0.pred, key_terms, window, level0, isect_tmp);

        let [cols_a, cols_b] = cols;
        for block in level0.chunks(block_size) {
            let (mut cur, mut nxt): (&mut Vec<Vec<Term>>, &mut Vec<Vec<Term>>) =
                (&mut *cols_a, &mut *cols_b);

            // Seed the frontier from the block's pivot candidates.
            for col in cur.iter_mut() {
                col.clear();
            }
            let mut rows = 0usize;
            'seed: for &idx in block {
                let atom = inst.atom(idx);
                for &(pos, first) in &step0.self_eqs {
                    if atom.args[pos as usize] != atom.args[first as usize] {
                        continue 'seed;
                    }
                }
                for &(pos, v) in &step0.binds {
                    cur[v as usize].push(atom.args[pos as usize]);
                }
                rows += 1;
            }

            // Cascade the remaining levels: per row, intersect the keyed
            // posting lists, check intra-atom repeats, extend the next
            // frontier in place.
            for step in &prog[1..] {
                if rows == 0 {
                    break;
                }
                for col in nxt.iter_mut() {
                    col.clear();
                }
                let bounds = match step.region {
                    Region::Old => (0, delta_start),
                    Region::All => (0, AtomIdx::MAX),
                    Region::New => (window.0, window.1),
                };
                if bind_vals.len() < step.binds.len() {
                    bind_vals.resize_with(step.binds.len(), Vec::new);
                }
                let mut next_rows = 0usize;
                // Consecutive rows frequently repeat a key (delta commits
                // cluster atoms by the value they extend, and star-shaped
                // joins fan out under one hub), so rows are processed a
                // *run* of equal keys at a time: the candidate lookup —
                // an index probe or a full multi-key intersection — and
                // the self-eq filter happen once per run, and each run
                // row extends the next frontier by a splat (carried
                // values) plus a memcpy (the pre-filtered bind values)
                // instead of per-candidate pushes.
                let mut row = 0usize;
                while row < rows {
                    key_terms.clear();
                    for &(pos, src) in &step.keys {
                        let t = match src {
                            KeySource::Ground(t) => t,
                            KeySource::Var(v) => cur[v as usize][row],
                        };
                        key_terms.push((pos, t));
                    }
                    // Extend the run while every variable key component
                    // repeats (ground components are constant).
                    let mut end = row + 1;
                    'run: while end < rows {
                        for (j, &(_, src)) in step.keys.iter().enumerate() {
                            if let KeySource::Var(v) = src {
                                if cur[v as usize][end] != key_terms[j].1 {
                                    break 'run;
                                }
                            }
                        }
                        end += 1;
                    }
                    let cands: &[AtomIdx] = match key_terms.len() {
                        0 => {
                            let list = inst.atoms_with_pred(step.pred);
                            let lo = list.partition_point(|&i| i < bounds.0);
                            let hi = list.partition_point(|&i| i < bounds.1);
                            &list[lo..hi]
                        }
                        1 => {
                            let (pos, t) = key_terms[0];
                            let list = inst.atoms_with_pred_term_at(step.pred, pos, t);
                            let lo = list.partition_point(|&i| i < bounds.0);
                            let hi = list.partition_point(|&i| i < bounds.1);
                            &list[lo..hi]
                        }
                        _ => {
                            inst.intersect_pred_term_at(
                                step.pred, key_terms, bounds, isect, isect_tmp,
                            );
                            isect
                        }
                    };
                    // Pre-filter the run's candidates: self-eq checks
                    // depend only on the atom, so they hold for every row
                    // of the run; surviving bind values land column-wise.
                    for b in bind_vals[..step.binds.len()].iter_mut() {
                        b.clear();
                    }
                    let mut m = 0usize;
                    'cand: for &idx in cands {
                        let atom = inst.atom(idx);
                        for &(pos, first) in &step.self_eqs {
                            if atom.args[pos as usize] != atom.args[first as usize] {
                                continue 'cand;
                            }
                        }
                        for (j, &(pos, _)) in step.binds.iter().enumerate() {
                            bind_vals[j].push(atom.args[pos as usize]);
                        }
                        m += 1;
                    }
                    if m > 0 {
                        // Column-wise extension: each output column is
                        // independent, so the carried splats and bind
                        // copies run one sequential column at a time.
                        for &v in &step.carry {
                            let src = &cur[v as usize][row..end];
                            let col = &mut nxt[v as usize];
                            for &val in src {
                                let len = col.len();
                                col.resize(len + m, val);
                            }
                        }
                        for (j, &(_, v)) in step.binds.iter().enumerate() {
                            let col = &mut nxt[v as usize];
                            for _ in row..end {
                                col.extend_from_slice(&bind_vals[j]);
                            }
                        }
                        next_rows += m * (end - row);
                    }
                    row = end;
                }
                rows = next_rows;
                std::mem::swap(&mut cur, &mut nxt);
            }

            if rows > 0 {
                let block = BindingBlock {
                    cols: cur,
                    bound: &self.lane_bound,
                    rows,
                };
                on_block(&block)?;
            }
        }
        ControlFlow::Continue(())
    }
}

/// Compiles one pivot stage's [`Step`] list into its lane program: the
/// static keys/binds/self-eqs/carry classification of every argument
/// position, derived by simulating the bound-variable set step by step
/// (which depends only on the step order, never on the data).
fn compile_lane_steps(steps: &[Step], var_count: u32) -> Vec<LaneStep> {
    let mut bound = vec![false; var_count as usize];
    let mut step_first: Vec<Option<u32>> = vec![None; var_count as usize];
    steps
        .iter()
        .map(|step| {
            let carry: Vec<u32> = (0..var_count).filter(|&v| bound[v as usize]).collect();
            let mut keys = Vec::new();
            let mut binds: Vec<(u32, u32)> = Vec::new();
            let mut self_eqs = Vec::new();
            for s in step_first.iter_mut() {
                *s = None;
            }
            for (pos, &t) in step.pattern.args.iter().enumerate() {
                let pos = pos as u32;
                match t {
                    Term::Var(v) => {
                        let vi = v.index();
                        if bound[vi] {
                            keys.push((pos, KeySource::Var(v.0)));
                        } else if let Some(first) = step_first[vi] {
                            self_eqs.push((pos, first));
                        } else {
                            step_first[vi] = Some(pos);
                            binds.push((pos, v.0));
                        }
                    }
                    ground => keys.push((pos, KeySource::Ground(ground))),
                }
            }
            for &(_, v) in &binds {
                bound[v as usize] = true;
            }
            LaneStep {
                pred: step.pattern.pred,
                region: step.region,
                keys,
                binds,
                self_eqs,
                carry,
            }
        })
        .collect()
}

/// Pivot candidates per block of the batch executor: large enough to
/// amortize the per-block column resets and callback, small enough that
/// a block's frontier stays cache-resident through the cascade.
const BATCH_BLOCK: usize = 512;

/// Caller-owned scratch for batch (columnar) enumeration: the level-0
/// candidate buffer, the per-run intersection and pre-filtered bind
/// value buffers, the key assembly buffer, and the two ping-pong
/// frontier column sets (one `Vec<Term>` column per dense variable). One `BatchScratch` serves any number of
/// plans; recycling it across rounds keeps the batch path allocation-free
/// after warm-up, exactly like [`Scratch`] for the backtracking search.
#[derive(Debug, Default)]
pub struct BatchScratch {
    level0: Vec<AtomIdx>,
    isect: Vec<AtomIdx>,
    isect_tmp: Vec<AtomIdx>,
    key_terms: Vec<(u32, Term)>,
    bind_vals: Vec<Vec<Term>>,
    cols: [Vec<Vec<Term>>; 2],
}

impl BatchScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes both column sets to `var_count` columns.
    fn prepare(&mut self, var_count: u32) {
        for cols in &mut self.cols {
            cols.resize_with(var_count as usize, Vec::new);
        }
    }
}

/// One block of complete bindings materialized by the batch executor:
/// `rows` bindings in columnar layout, one column per dense variable.
/// Rows are in enumeration order (the backtracking search's order);
/// unbound variables (head existentials sharing the dense id space) read
/// as their placeholder `Term::Var`, exactly the placeholder form the
/// trigger pipeline expects.
#[derive(Debug)]
pub struct BindingBlock<'a> {
    cols: &'a [Vec<Term>],
    bound: &'a [bool],
    rows: usize,
}

impl BindingBlock<'_> {
    /// Number of binding rows in the block.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The value of (pattern-bound) variable `v` at `row`.
    #[inline]
    pub fn var(&self, row: usize, v: VarId) -> Term {
        debug_assert!(self.bound[v.index()], "variable bound by the patterns");
        self.cols[v.index()][row]
    }

    /// The full column of (pattern-bound) variable `v`: `rows()` terms
    /// in row order. The batch emit pass gathers trigger keys
    /// column-wise through this instead of `rows × keys` `var` calls.
    #[inline]
    pub fn col(&self, v: VarId) -> &[Term] {
        debug_assert!(self.bound[v.index()], "variable bound by the patterns");
        &self.cols[v.index()][..self.rows]
    }

    /// Copies row `row` into `out` (cleared first) as a complete
    /// placeholder-form binding: bound variables carry their value,
    /// unbound slots their `Term::Var` placeholder — byte-identical to
    /// what the backtracking callback's binding produces under
    /// `t.unwrap_or(Term::Var(v))`.
    pub fn read_row(&self, row: usize, out: &mut Vec<Term>) {
        out.clear();
        out.extend(
            self.cols
                .iter()
                .zip(self.bound)
                .enumerate()
                .map(|(v, (col, &b))| {
                    if b {
                        col[row]
                    } else {
                        Term::Var(VarId(v as u32))
                    }
                }),
        );
    }
}

/// Splits the delta region `[delta_start, delta_end)` into contiguous
/// windows of at most `chunk` atoms (ascending, disjoint, exhaustive) —
/// the region partitioning consumed by `(rule, pivot, window)` task
/// units. Yields nothing for an empty delta. `chunk` must be nonzero.
///
/// The windows are a pure function of the delta bounds and `chunk` —
/// deliberately independent of the worker count, so any executor
/// processing them in `(pivot, window.lo)` order enumerates byte-identical
/// trigger sequences at any parallelism level.
pub fn delta_windows(
    delta_start: AtomIdx,
    delta_end: AtomIdx,
    chunk: u32,
) -> impl Iterator<Item = (AtomIdx, AtomIdx)> {
    assert!(chunk > 0, "chunk must be nonzero");
    (delta_start..delta_end)
        .step_by(chunk as usize)
        .map(move |lo| (lo, delta_end.min(lo.saturating_add(chunk))))
}

/// The backtracking search over one step list. Holds only borrows; all
/// mutable state lives in the caller's [`Scratch`]. The [`Region::New`]
/// window `[new_lo, new_hi)` is the pivot restriction (normally the whole
/// delta; a sub-window under parallel region partitioning), while
/// `delta_start` bounds [`Region::Old`].
struct Search<'a, 'b, F> {
    inst: &'a Instance,
    steps: &'a [Step],
    delta_start: AtomIdx,
    new_lo: AtomIdx,
    new_hi: AtomIdx,
    binding: &'b mut [Option<Term>],
    trail: &'b mut Vec<u32>,
    callback: &'b mut F,
}

/// Candidate posting list for `step` under the current binding: the
/// shortest (most selective) `(pred, position, term)` list over the
/// argument positions whose term is ground or bound. Returns `None` when
/// no position is keyable (callers fall back to the predicate scan). A
/// free function so the result borrows only from `inst`, not from the
/// search state.
fn candidates<'a>(
    inst: &'a Instance,
    step: &Step,
    binding: &[Option<Term>],
) -> Option<&'a [AtomIdx]> {
    let mut best: Option<&'a [AtomIdx]> = None;
    for (pos, &t) in step.pattern.args.iter().enumerate() {
        let key = match t {
            Term::Var(v) => match binding[v.index()] {
                Some(bound) => bound,
                None => continue,
            },
            ground => ground,
        };
        let list = inst.atoms_with_pred_term_at(step.pattern.pred, pos as u32, key);
        if best.is_none_or(|b| list.len() < b.len()) {
            best = Some(list);
            if list.is_empty() {
                break;
            }
        }
    }
    best
}

/// Above this many delta atoms, a [`Region::New`] fallback scan uses a
/// binary search on the predicate posting list instead of walking the
/// delta range directly. Small deltas — the steady state of a deep chase
/// — are cheaper to walk than to binary-search a six-figure posting list.
const DELTA_SCAN_LIMIT: AtomIdx = 1024;

impl<F> Search<'_, '_, F>
where
    F: FnMut(&[Option<Term>]) -> ControlFlow<()>,
{
    fn go(&mut self, k: usize) -> ControlFlow<()> {
        if k == self.steps.len() {
            return (self.callback)(self.binding);
        }
        // `inst` and `steps` live for 'a, independent of `self`, so
        // copying the references out keeps the mutable `self` calls below
        // legal.
        let inst = self.inst;
        let steps = self.steps;
        let step = &steps[k];
        let keyed = candidates(inst, step, self.binding);
        if keyed.is_none() && step.region == Region::New {
            let hi = self.new_hi.min(inst.len() as AtomIdx);
            if hi.saturating_sub(self.new_lo) <= DELTA_SCAN_LIMIT {
                // Walk the window range directly, filtering by predicate.
                for idx in self.new_lo..hi {
                    if inst.pred_of(idx) == step.pattern.pred {
                        self.try_candidate(inst, step, idx, k)?;
                    }
                }
                return ControlFlow::Continue(());
            }
        }
        let cands = keyed.unwrap_or_else(|| inst.atoms_with_pred(step.pattern.pred));
        // Posting lists are ascending, so region restriction is a split.
        let slice: &[AtomIdx] = match step.region {
            Region::All => cands,
            Region::Old => {
                let split = cands.partition_point(|&i| i < self.delta_start);
                &cands[..split]
            }
            Region::New => {
                let lo = cands.partition_point(|&i| i < self.new_lo);
                let hi = cands.partition_point(|&i| i < self.new_hi);
                &cands[lo..hi]
            }
        };
        for &idx in slice {
            self.try_candidate(inst, step, idx, k)?;
        }
        ControlFlow::Continue(())
    }

    /// Unifies candidate `idx` with the step's pattern; recurses on
    /// success; always restores the binding to its pre-call state.
    #[inline]
    fn try_candidate(
        &mut self,
        inst: &Instance,
        step: &Step,
        idx: AtomIdx,
        k: usize,
    ) -> ControlFlow<()> {
        let atom = inst.atom(idx);
        debug_assert_eq!(
            step.pattern.args.len(),
            atom.args.len(),
            "schema gives every predicate a fixed arity"
        );
        let mark = self.trail.len();
        for (&pt, &at) in step.pattern.args.iter().zip(atom.args.iter()) {
            match pt {
                Term::Var(v) => {
                    let slot = &mut self.binding[v.index()];
                    match *slot {
                        Some(bound) => {
                            if bound != at {
                                self.undo(mark);
                                return ControlFlow::Continue(());
                            }
                        }
                        None => {
                            *slot = Some(at);
                            self.trail.push(v.0);
                        }
                    }
                }
                ground => {
                    if ground != at {
                        self.undo(mark);
                        return ControlFlow::Continue(());
                    }
                }
            }
        }
        let flow = self.go(k + 1);
        self.undo(mark);
        flow
    }

    #[inline]
    fn undo(&mut self, mark: usize) {
        for &v in &self.trail[mark..] {
            self.binding[v as usize] = None;
        }
        self.trail.truncate(mark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{ConstId, PredId, VarId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    fn collect(plan: &MatchPlan, inst: &Instance) -> Vec<Vec<Option<Term>>> {
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        plan.for_each_hom(inst, &mut scratch, |b| {
            out.push(b.to_vec());
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn repeated_variables_key_distinct_position_lists() {
        // p(X, X, c1) over {p(c0, c2, c1)}: with X ↦ c0 bound, position 0
        // keys a non-empty list but position 1 keys the empty
        // (pred, 1, c0) list — the most-selective probe prunes the atom
        // without ever unifying it.
        let inst = Instance::from_atoms(vec![atom(0, vec![c(0), c(2), c(1)])]);
        assert!(inst.atoms_with_pred_term_at(PredId(0), 1, c(0)).is_empty());
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(0), c(1)])], 1);
        assert!(collect(&plan, &inst).is_empty());
        // And a genuinely diagonal atom still matches.
        let inst2 = Instance::from_atoms(vec![atom(0, vec![c(0), c(0), c(1)])]);
        assert_eq!(collect(&plan, &inst2), vec![vec![Some(c(0))]]);
    }

    #[test]
    fn position_aware_probe_skips_wrong_slot_candidates() {
        // e(X, Y), e(Y, Z): with Y bound, the second pattern probes the
        // (e, 0, Y) list, which excludes atoms carrying Y only at slot 1.
        let inst = Instance::from_atoms((0..3).map(|i| atom(0, vec![c(i), c(i + 1)])));
        assert_eq!(inst.atoms_with_pred_term_at(PredId(0), 0, c(1)), &[1]);
        assert_eq!(inst.atoms_with_pred_term_at(PredId(0), 1, c(1)), &[0]);
    }

    #[test]
    fn pivot_windows_partition_the_delta_homs() {
        // Build a chain, split it into old + delta, and check that the
        // (pivot, window) units reproduce for_each_hom_delta exactly.
        let mut inst = Instance::new();
        for i in 0..4 {
            inst.insert(atom(0, vec![c(i), c(i + 1)]));
        }
        let delta_start = inst.len() as AtomIdx;
        for i in 4..9 {
            inst.insert(atom(0, vec![c(i), c(i + 1)]));
        }
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])], 3);
        let mut scratch = Scratch::new();
        let mut reference = Vec::new();
        plan.for_each_hom_delta(&inst, delta_start, &mut scratch, |b| {
            reference.push(b.to_vec());
            ControlFlow::Continue(())
        });
        for chunk in [1u32, 2, 3, 16] {
            let mut windowed = Vec::new();
            for pivot in 0..plan.pivot_count() {
                for w in delta_windows(delta_start, inst.len() as AtomIdx, chunk) {
                    plan.for_each_hom_pivot(&inst, delta_start, pivot, w, &mut scratch, |b| {
                        windowed.push(b.to_vec());
                        ControlFlow::Continue(())
                    });
                }
            }
            assert_eq!(windowed, reference, "chunk {chunk}");
        }
    }

    #[test]
    fn pivot_zero_windows_partition_the_full_enumeration() {
        // delta_start == 0: pivot 0 over windows of [0, len) must equal
        // full enumeration; later pivots yield nothing (empty old region).
        let inst = Instance::from_atoms((0..5).map(|i| atom(0, vec![c(i), c(i + 1)])));
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])], 3);
        let mut scratch = Scratch::new();
        let reference = collect(&plan, &inst);
        let mut windowed = Vec::new();
        for w in delta_windows(0, inst.len() as AtomIdx, 2) {
            plan.for_each_hom_pivot(&inst, 0, 0, w, &mut scratch, |b| {
                windowed.push(b.to_vec());
                ControlFlow::Continue(())
            });
        }
        assert_eq!(windowed, reference);
        for pivot in 1..plan.pivot_count() {
            plan.for_each_hom_pivot(
                &inst,
                0,
                pivot,
                (0, inst.len() as AtomIdx),
                &mut scratch,
                |_| {
                    panic!("pivot {pivot} must be empty at delta_start 0");
                },
            );
        }
    }

    #[test]
    fn delta_windows_cover_exactly() {
        let ws: Vec<_> = delta_windows(3, 11, 3).collect();
        assert_eq!(ws, vec![(3, 6), (6, 9), (9, 11)]);
        assert_eq!(delta_windows(5, 5, 4).count(), 0);
        assert_eq!(delta_windows(0, 1, 1024).collect::<Vec<_>>(), vec![(0, 1)]);
    }

    #[test]
    fn join_finds_paths() {
        let inst = Instance::from_atoms((0..3).map(|i| atom(0, vec![c(i), c(i + 1)])));
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])], 3);
        let homs = collect(&plan, &inst);
        assert_eq!(homs.len(), 2);
    }

    #[test]
    fn selective_index_prunes_to_empty_lists() {
        // Pattern with a ground key absent from the instance: the search
        // must visit zero candidates.
        let inst = Instance::from_atoms(vec![atom(0, vec![c(0), c(1)])]);
        let plan = MatchPlan::compile(&[atom(0, vec![c(9), v(0)])], 1);
        assert!(collect(&plan, &inst).is_empty());
    }

    #[test]
    fn delta_pivots_cover_exactly_the_new_homs() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(0, vec![c(1), c(2)]));
        let delta_start = inst.len() as AtomIdx;
        inst.insert(atom(0, vec![c(2), c(3)]));
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])], 3);
        let mut scratch = Scratch::new();
        let mut homs = Vec::new();
        plan.for_each_hom_delta(&inst, delta_start, &mut scratch, |b| {
            homs.push(b.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(homs, vec![vec![Some(c(1)), Some(c(2)), Some(c(3))]]);
    }

    #[test]
    fn seeded_search_respects_the_seed() {
        let inst = Instance::from_atoms((0..3).map(|i| atom(0, vec![c(i), c(i + 1)])));
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(1)])], 2);
        let mut scratch = Scratch::new();
        assert!(plan.exists_hom_seeded(&inst, &[Some(c(1)), None], &mut scratch));
        assert!(!plan.exists_hom_seeded(&inst, &[Some(c(9)), None], &mut scratch));
    }

    /// The placeholder form the trigger pipeline sees: bound slots carry
    /// their value, unbound slots their `Term::Var` placeholder.
    fn placeholder(b: &[Option<Term>]) -> Vec<Term> {
        b.iter()
            .enumerate()
            .map(|(v, t)| t.unwrap_or(Term::Var(VarId(v as u32))))
            .collect()
    }

    fn collect_pivot(
        plan: &MatchPlan,
        inst: &Instance,
        delta_start: AtomIdx,
        pivot: usize,
        window: (AtomIdx, AtomIdx),
    ) -> Vec<Vec<Term>> {
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        plan.for_each_hom_pivot(inst, delta_start, pivot, window, &mut scratch, |b| {
            out.push(placeholder(b));
            ControlFlow::Continue(())
        });
        out
    }

    fn collect_pivot_batch(
        plan: &MatchPlan,
        inst: &Instance,
        delta_start: AtomIdx,
        pivot: usize,
        window: (AtomIdx, AtomIdx),
        block_size: usize,
    ) -> Vec<Vec<Term>> {
        let mut bs = BatchScratch::new();
        let mut out = Vec::new();
        let mut row = Vec::new();
        let _ = plan.batch_pivot_sized(
            inst,
            delta_start,
            pivot,
            window,
            block_size,
            &mut bs,
            &mut |block: &BindingBlock<'_>| {
                for r in 0..block.rows() {
                    block.read_row(r, &mut row);
                    out.push(row.clone());
                }
                ControlFlow::Continue(())
            },
        );
        out
    }

    fn collect_delta_batch(
        plan: &MatchPlan,
        inst: &Instance,
        delta_start: AtomIdx,
    ) -> Vec<Vec<Term>> {
        let mut bs = BatchScratch::new();
        let mut out = Vec::new();
        let mut row = Vec::new();
        plan.for_each_hom_delta_batch(inst, delta_start, &mut bs, |block| {
            for r in 0..block.rows() {
                block.read_row(r, &mut row);
                out.push(row.clone());
            }
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn batch_pivots_match_backtracking_on_chain_windows() {
        // Same shape as pivot_windows_partition_the_delta_homs, but
        // pinning the batch executor against the backtracking search for
        // every (pivot, window, block size) — content AND order.
        let mut inst = Instance::new();
        for i in 0..4 {
            inst.insert(atom(0, vec![c(i), c(i + 1)]));
        }
        let delta_start = inst.len() as AtomIdx;
        for i in 4..9 {
            inst.insert(atom(0, vec![c(i), c(i + 1)]));
        }
        let len = inst.len() as AtomIdx;
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])], 3);
        let mut any = 0usize;
        for chunk in [1u32, 2, 3, 16] {
            for pivot in 0..plan.pivot_count() {
                for w in delta_windows(delta_start, len, chunk) {
                    let reference = collect_pivot(&plan, &inst, delta_start, pivot, w);
                    any += reference.len();
                    for block_size in [1usize, 2, 3, 64] {
                        let batch =
                            collect_pivot_batch(&plan, &inst, delta_start, pivot, w, block_size);
                        assert_eq!(
                            batch, reference,
                            "pivot {pivot} window {w:?} block {block_size}"
                        );
                    }
                }
            }
        }
        assert!(any > 0, "the sweep must exercise nonempty windows");
    }

    #[test]
    fn batch_delta_sweep_matches_backtracking() {
        let mut inst = Instance::new();
        for i in 0..4 {
            inst.insert(atom(0, vec![c(i), c(i + 1)]));
        }
        let delta_start = inst.len() as AtomIdx;
        for i in 4..9 {
            inst.insert(atom(0, vec![c(i), c(i + 1)]));
        }
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])], 3);
        let mut scratch = Scratch::new();
        for ds in [delta_start, 0] {
            let mut reference = Vec::new();
            plan.for_each_hom_delta(&inst, ds, &mut scratch, |b| {
                reference.push(placeholder(b));
                ControlFlow::Continue(())
            });
            assert!(!reference.is_empty());
            assert_eq!(collect_delta_batch(&plan, &inst, ds), reference, "ds {ds}");
        }
    }

    #[test]
    fn batch_triangle_join_exercises_multi_key_intersection() {
        // e(X,Y), e(Y,Z), e(X,Z): the third step keys BOTH argument
        // positions (X and Z bound), so the batch path runs a genuine
        // posting-list intersection per row.
        let edges = [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (0, 0)];
        let mut inst = Instance::new();
        for &(a, b) in &edges[..3] {
            inst.insert(atom(0, vec![c(a), c(b)]));
        }
        let delta_start = inst.len() as AtomIdx;
        for &(a, b) in &edges[3..] {
            inst.insert(atom(0, vec![c(a), c(b)]));
        }
        let plan = MatchPlan::compile(
            &[
                atom(0, vec![v(0), v(1)]),
                atom(0, vec![v(1), v(2)]),
                atom(0, vec![v(0), v(2)]),
            ],
            3,
        );
        let mut scratch = Scratch::new();
        for ds in [0, delta_start] {
            let mut reference = Vec::new();
            plan.for_each_hom_delta(&inst, ds, &mut scratch, |b| {
                reference.push(placeholder(b));
                ControlFlow::Continue(())
            });
            assert!(reference.len() >= 2, "the graph must contain triangles");
            assert_eq!(collect_delta_batch(&plan, &inst, ds), reference, "ds {ds}");
        }
        // And across explicit windows with tiny blocks.
        let len = inst.len() as AtomIdx;
        for pivot in 0..plan.pivot_count() {
            for w in delta_windows(delta_start, len, 1) {
                let reference = collect_pivot(&plan, &inst, delta_start, pivot, w);
                assert_eq!(
                    collect_pivot_batch(&plan, &inst, delta_start, pivot, w, 1),
                    reference
                );
            }
        }
    }

    #[test]
    fn batch_handles_repeated_vars_ground_keys_and_existential_slots() {
        // p(X, X, c1) with an extra existential slot in the dense id
        // space: the batch row must carry the self-eq filter, the ground
        // key, and the untouched slot's Term::Var placeholder.
        let inst = Instance::from_atoms(vec![
            atom(0, vec![c(0), c(2), c(1)]), // fails the self-eq
            atom(0, vec![c(0), c(0), c(1)]), // matches
            atom(0, vec![c(3), c(3), c(2)]), // fails the ground key
            atom(0, vec![c(4), c(4), c(1)]), // matches
        ]);
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(0), c(1)])], 2);
        let batch = collect_delta_batch(&plan, &inst, 0);
        assert_eq!(
            batch,
            vec![
                vec![c(0), Term::Var(VarId(1))],
                vec![c(4), Term::Var(VarId(1))]
            ]
        );
        let mut scratch = Scratch::new();
        let mut reference = Vec::new();
        plan.for_each_hom(&inst, &mut scratch, |b| {
            reference.push(placeholder(b));
            ControlFlow::Continue(())
        });
        assert_eq!(batch, reference);
    }

    #[test]
    fn batch_counts_rows_for_fully_ground_patterns() {
        // A pattern with no variables binds no columns, so the row count
        // must come from an explicit counter, not a column length.
        let inst = Instance::from_atoms(vec![atom(0, vec![c(0), c(1)]), atom(0, vec![c(2), c(3)])]);
        let plan = MatchPlan::compile(&[atom(0, vec![c(0), c(1)])], 0);
        let batch = collect_delta_batch(&plan, &inst, 0);
        assert_eq!(batch, vec![Vec::<Term>::new()]);
    }

    #[test]
    fn batch_early_break_stops_after_the_block() {
        let inst = Instance::from_atoms((0..6).map(|i| atom(0, vec![c(i), c(i + 1)])));
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(1)])], 2);
        let reference = collect_pivot(&plan, &inst, 0, 0, (0, inst.len() as AtomIdx));
        let mut bs = BatchScratch::new();
        let mut out = Vec::new();
        let mut row = Vec::new();
        let _ = plan.batch_pivot_sized(
            &inst,
            0,
            0,
            (0, inst.len() as AtomIdx),
            2,
            &mut bs,
            &mut |block: &BindingBlock<'_>| {
                for r in 0..block.rows() {
                    block.read_row(r, &mut row);
                    out.push(row.clone());
                }
                ControlFlow::Break(())
            },
        );
        assert_eq!(out.len(), 2, "one block of two pivot candidates");
        assert_eq!(out[..], reference[..2]);
    }

    #[test]
    fn scratch_is_reusable_across_plans() {
        let inst = Instance::from_atoms((0..5).map(|i| atom(0, vec![c(i), c(i + 1)])));
        let p1 = MatchPlan::compile(&[atom(0, vec![v(0), v(1)])], 2);
        let p2 = MatchPlan::compile(&[atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])], 3);
        let mut scratch = Scratch::new();
        let mut n1 = 0;
        p1.for_each_hom(&inst, &mut scratch, |_| {
            n1 += 1;
            ControlFlow::Continue(())
        });
        let mut n2 = 0;
        p2.for_each_hom(&inst, &mut scratch, |_| {
            n2 += 1;
            ControlFlow::Continue(())
        });
        assert_eq!((n1, n2), (5, 4));
    }
}
