//! Compiled match plans: the query-compilation layer of the hom search.
//!
//! The chase evaluates the same rule bodies millions of times, so
//! everything that can be decided *per rule* must not be recomputed *per
//! candidate atom*. A [`MatchPlan`] compiles a pattern conjunction once —
//! at `Tgd`/`Cq` construction — into:
//!
//! * the **full-enumeration stage** (patterns in given order, whole
//!   instance), and
//! * one **pivot stage per pattern** for semi-naive delta enumeration:
//!   the pivot pattern (restricted to the delta) is matched first, the
//!   patterns before it against the old region, the rest against
//!   everything — the standard duplicate-free pivot scheme, with the
//!   permuted pattern lists and [`Region`] vectors precomputed instead of
//!   cloned per round;
//! * per-pattern **probe positions**: the argument positions (ground
//!   terms and first occurrences of variables) that can key an index
//!   lookup. At runtime the search probes each one that is bound and
//!   scans the *most selective* (shortest) posting list, rather than the
//!   first bound argument.
//!
//! The backtracking state lives in a caller-owned [`Scratch`] (binding
//! slots + a single undo trail with per-depth marks), so the inner search
//! loop performs **zero heap allocations per candidate** — no trail
//! `Vec`s, no pattern clones, no binding copies.

use std::ops::ControlFlow;

use crate::atom::Atom;
use crate::instance::{AtomIdx, Instance};
use crate::term::Term;

/// Which part of the instance a pattern atom may match during semi-naive
/// enumeration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Region {
    /// Atom indexes `< delta_start`.
    Old,
    /// Atom indexes `≥ delta_start`.
    New,
    /// The whole instance.
    All,
}

/// One pattern to match, with its region and precomputed probe positions.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Step {
    pattern: Atom,
    region: Region,
    /// Argument positions usable as index keys: ground terms and first
    /// occurrences of variables (repeated occurrences would probe the
    /// same posting list again).
    probes: Vec<u32>,
}

impl Step {
    fn new(pattern: &Atom, region: Region) -> Step {
        let mut probes = Vec::with_capacity(pattern.args.len());
        for (i, &t) in pattern.args.iter().enumerate() {
            let first_occurrence = match t {
                Term::Var(_) => !pattern.args[..i].contains(&t),
                _ => true, // ground: always a usable key
            };
            if first_occurrence {
                probes.push(i as u32);
            }
        }
        Step {
            pattern: pattern.clone(),
            region,
            probes,
        }
    }
}

/// Reusable scratch state for plan execution: the variable binding and the
/// backtracking trail. One `Scratch` serves any number of searches (and
/// any number of plans); reusing it across calls is what makes the search
/// allocation-free after warm-up.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    binding: Vec<Option<Term>>,
    trail: Vec<u32>,
}

impl Scratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the first `var_count` binding slots and sizes the buffers.
    fn prepare(&mut self, var_count: u32) {
        let n = var_count as usize;
        self.binding.clear();
        self.binding.resize(n, None);
        self.trail.clear();
    }
}

/// A compiled match plan for a pattern conjunction over dense rule-local
/// variables `0..var_count`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MatchPlan {
    var_count: u32,
    /// Patterns in given order, [`Region::All`] — full enumeration.
    full: Vec<Step>,
    /// `pivots[j]`: pattern `j` first (restricted to the delta), patterns
    /// `< j` against the old region, patterns `> j` against everything.
    pivots: Vec<Vec<Step>>,
}

impl MatchPlan {
    /// Compiles a plan with delta stages. `patterns` use dense variable
    /// ids `0..var_count`.
    pub fn compile(patterns: &[Atom], var_count: u32) -> MatchPlan {
        let mut plan = MatchPlan::compile_scan(patterns, var_count);
        plan.pivots = (0..patterns.len())
            .map(|pivot| {
                // Match the pivot (delta-restricted) pattern FIRST: the
                // delta is small, and its bindings turn the remaining
                // old/all scans into index lookups.
                let mut steps = Vec::with_capacity(patterns.len());
                steps.push(Step::new(&patterns[pivot], Region::New));
                for (k, p) in patterns.iter().enumerate() {
                    if k != pivot {
                        let region = if k < pivot { Region::Old } else { Region::All };
                        steps.push(Step::new(p, region));
                    }
                }
                steps
            })
            .collect();
        plan
    }

    /// Compiles a full-enumeration-only plan — no per-pivot delta stages.
    /// Use for plans that only ever run [`MatchPlan::for_each_hom`] /
    /// [`MatchPlan::for_each_hom_seeded`] (query evaluation, head
    /// matching): skipping the pivot permutations makes construction
    /// linear instead of quadratic in the pattern count. Calling
    /// [`MatchPlan::for_each_hom_delta`] with a nonzero `delta_start` on
    /// such a plan panics.
    pub fn compile_scan(patterns: &[Atom], var_count: u32) -> MatchPlan {
        debug_assert!(
            patterns
                .iter()
                .flat_map(|p| p.args.iter())
                .all(|t| t.as_var().is_none_or(|v| v.0 < var_count)),
            "pattern variables must be dense in 0..var_count"
        );
        let full: Vec<Step> = patterns.iter().map(|p| Step::new(p, Region::All)).collect();
        MatchPlan {
            var_count,
            full,
            pivots: Vec::new(),
        }
    }

    /// Number of dense variables the plan binds.
    pub fn var_count(&self) -> u32 {
        self.var_count
    }

    /// The number of patterns in the conjunction.
    pub fn pattern_count(&self) -> usize {
        self.full.len()
    }

    /// Enumerates every homomorphism from the compiled patterns into
    /// `inst`, invoking `callback` with the complete binding (indexed by
    /// dense variable id). Return [`ControlFlow::Break`] to stop early.
    pub fn for_each_hom(
        &self,
        inst: &Instance,
        scratch: &mut Scratch,
        mut callback: impl FnMut(&[Option<Term>]) -> ControlFlow<()>,
    ) {
        scratch.prepare(self.var_count);
        let mut search = Search {
            inst,
            steps: &self.full,
            delta_start: 0,
            binding: &mut scratch.binding,
            trail: &mut scratch.trail,
            callback: &mut callback,
        };
        let _ = search.go(0);
    }

    /// Enumerates every homomorphism whose image contains at least one
    /// atom with index `≥ delta_start`, without duplicates (pivot
    /// scheme). With `delta_start == 0` this equals
    /// [`MatchPlan::for_each_hom`].
    pub fn for_each_hom_delta(
        &self,
        inst: &Instance,
        delta_start: AtomIdx,
        scratch: &mut Scratch,
        mut callback: impl FnMut(&[Option<Term>]) -> ControlFlow<()>,
    ) {
        if delta_start == 0 {
            self.for_each_hom(inst, scratch, callback);
            return;
        }
        if delta_start as usize >= inst.len() {
            return; // empty delta: nothing new can match
        }
        assert!(
            self.pivots.len() == self.full.len(),
            "delta enumeration on a plan compiled with MatchPlan::compile_scan"
        );
        for steps in &self.pivots {
            scratch.prepare(self.var_count);
            let mut search = Search {
                inst,
                steps,
                delta_start,
                binding: &mut scratch.binding,
                trail: &mut scratch.trail,
                callback: &mut callback,
            };
            if search.go(0).is_break() {
                return;
            }
        }
    }

    /// Like [`MatchPlan::for_each_hom`], but starting from a partial
    /// binding: `seed[v] = Some(t)` pins variable `v` to `t`. Used e.g. by
    /// the restricted chase's activeness check, which asks for an
    /// extension `h' ⊇ h|fr(σ)` mapping the head into the instance.
    pub fn for_each_hom_seeded(
        &self,
        inst: &Instance,
        seed: &[Option<Term>],
        scratch: &mut Scratch,
        mut callback: impl FnMut(&[Option<Term>]) -> ControlFlow<()>,
    ) {
        scratch.prepare(self.var_count);
        scratch.binding[..seed.len()].copy_from_slice(seed);
        let mut search = Search {
            inst,
            steps: &self.full,
            delta_start: 0,
            binding: &mut scratch.binding,
            trail: &mut scratch.trail,
            callback: &mut callback,
        };
        let _ = search.go(0);
    }

    /// Does an extension of `seed` map all patterns into `inst`?
    pub fn exists_hom_seeded(
        &self,
        inst: &Instance,
        seed: &[Option<Term>],
        scratch: &mut Scratch,
    ) -> bool {
        let mut found = false;
        self.for_each_hom_seeded(inst, seed, scratch, |_| {
            found = true;
            ControlFlow::Break(())
        });
        found
    }
}

/// The backtracking search over one step list. Holds only borrows; all
/// mutable state lives in the caller's [`Scratch`].
struct Search<'a, 'b, F> {
    inst: &'a Instance,
    steps: &'a [Step],
    delta_start: AtomIdx,
    binding: &'b mut [Option<Term>],
    trail: &'b mut Vec<u32>,
    callback: &'b mut F,
}

/// Candidate posting list for `step` under the current binding: the
/// shortest (most selective) index list over the bound probe positions.
/// Returns `None` when no probe position is bound (callers fall back to
/// the predicate scan). A free function so the result borrows only from
/// `inst`, not from the search state.
fn candidates<'a>(
    inst: &'a Instance,
    step: &Step,
    binding: &[Option<Term>],
) -> Option<&'a [AtomIdx]> {
    let mut best: Option<&'a [AtomIdx]> = None;
    for &pos in &step.probes {
        let key = match step.pattern.args[pos as usize] {
            Term::Var(v) => match binding[v.index()] {
                Some(bound) => bound,
                None => continue,
            },
            ground => ground,
        };
        let list = inst.atoms_with_pred_term(step.pattern.pred, key);
        if best.is_none_or(|b| list.len() < b.len()) {
            best = Some(list);
            if list.is_empty() {
                break;
            }
        }
    }
    best
}

/// Above this many delta atoms, a [`Region::New`] fallback scan uses a
/// binary search on the predicate posting list instead of walking the
/// delta range directly. Small deltas — the steady state of a deep chase
/// — are cheaper to walk than to binary-search a six-figure posting list.
const DELTA_SCAN_LIMIT: AtomIdx = 1024;

impl<F> Search<'_, '_, F>
where
    F: FnMut(&[Option<Term>]) -> ControlFlow<()>,
{
    fn go(&mut self, k: usize) -> ControlFlow<()> {
        if k == self.steps.len() {
            return (self.callback)(self.binding);
        }
        // `inst` and `steps` live for 'a, independent of `self`, so
        // copying the references out keeps the mutable `self` calls below
        // legal.
        let inst = self.inst;
        let steps = self.steps;
        let step = &steps[k];
        let keyed = candidates(inst, step, self.binding);
        if keyed.is_none() && step.region == Region::New {
            let delta_len = inst.len() as AtomIdx - self.delta_start;
            if delta_len <= DELTA_SCAN_LIMIT {
                // Walk the delta range directly, filtering by predicate.
                for idx in self.delta_start..inst.len() as AtomIdx {
                    if inst.pred_of(idx) == step.pattern.pred {
                        self.try_candidate(inst, step, idx, k)?;
                    }
                }
                return ControlFlow::Continue(());
            }
        }
        let cands = keyed.unwrap_or_else(|| inst.atoms_with_pred(step.pattern.pred));
        // Posting lists are ascending, so region restriction is a split.
        let slice: &[AtomIdx] = match step.region {
            Region::All => cands,
            Region::Old => {
                let split = cands.partition_point(|&i| i < self.delta_start);
                &cands[..split]
            }
            Region::New => {
                let split = cands.partition_point(|&i| i < self.delta_start);
                &cands[split..]
            }
        };
        for &idx in slice {
            self.try_candidate(inst, step, idx, k)?;
        }
        ControlFlow::Continue(())
    }

    /// Unifies candidate `idx` with the step's pattern; recurses on
    /// success; always restores the binding to its pre-call state.
    #[inline]
    fn try_candidate(
        &mut self,
        inst: &Instance,
        step: &Step,
        idx: AtomIdx,
        k: usize,
    ) -> ControlFlow<()> {
        let atom = inst.atom(idx);
        debug_assert_eq!(
            step.pattern.args.len(),
            atom.args.len(),
            "schema gives every predicate a fixed arity"
        );
        let mark = self.trail.len();
        for (&pt, &at) in step.pattern.args.iter().zip(atom.args.iter()) {
            match pt {
                Term::Var(v) => {
                    let slot = &mut self.binding[v.index()];
                    match *slot {
                        Some(bound) => {
                            if bound != at {
                                self.undo(mark);
                                return ControlFlow::Continue(());
                            }
                        }
                        None => {
                            *slot = Some(at);
                            self.trail.push(v.0);
                        }
                    }
                }
                ground => {
                    if ground != at {
                        self.undo(mark);
                        return ControlFlow::Continue(());
                    }
                }
            }
        }
        let flow = self.go(k + 1);
        self.undo(mark);
        flow
    }

    #[inline]
    fn undo(&mut self, mark: usize) {
        for &v in &self.trail[mark..] {
            self.binding[v as usize] = None;
        }
        self.trail.truncate(mark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{ConstId, PredId, VarId};

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }
    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }
    fn atom(p: u32, args: Vec<Term>) -> Atom {
        Atom::new(PredId(p), args)
    }

    fn collect(plan: &MatchPlan, inst: &Instance) -> Vec<Vec<Option<Term>>> {
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        plan.for_each_hom(inst, &mut scratch, |b| {
            out.push(b.to_vec());
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn probes_skip_repeated_variables() {
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(0), c(1)])], 1);
        assert_eq!(plan.full[0].probes, vec![0, 2]);
    }

    #[test]
    fn join_finds_paths() {
        let inst = Instance::from_atoms((0..3).map(|i| atom(0, vec![c(i), c(i + 1)])));
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])], 3);
        let homs = collect(&plan, &inst);
        assert_eq!(homs.len(), 2);
    }

    #[test]
    fn selective_index_prunes_to_empty_lists() {
        // Pattern with a ground key absent from the instance: the search
        // must visit zero candidates.
        let inst = Instance::from_atoms(vec![atom(0, vec![c(0), c(1)])]);
        let plan = MatchPlan::compile(&[atom(0, vec![c(9), v(0)])], 1);
        assert!(collect(&plan, &inst).is_empty());
    }

    #[test]
    fn delta_pivots_cover_exactly_the_new_homs() {
        let mut inst = Instance::new();
        inst.insert(atom(0, vec![c(0), c(1)]));
        inst.insert(atom(0, vec![c(1), c(2)]));
        let delta_start = inst.len() as AtomIdx;
        inst.insert(atom(0, vec![c(2), c(3)]));
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])], 3);
        let mut scratch = Scratch::new();
        let mut homs = Vec::new();
        plan.for_each_hom_delta(&inst, delta_start, &mut scratch, |b| {
            homs.push(b.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(homs, vec![vec![Some(c(1)), Some(c(2)), Some(c(3))]]);
    }

    #[test]
    fn seeded_search_respects_the_seed() {
        let inst = Instance::from_atoms((0..3).map(|i| atom(0, vec![c(i), c(i + 1)])));
        let plan = MatchPlan::compile(&[atom(0, vec![v(0), v(1)])], 2);
        let mut scratch = Scratch::new();
        assert!(plan.exists_hom_seeded(&inst, &[Some(c(1)), None], &mut scratch));
        assert!(!plan.exists_hom_seeded(&inst, &[Some(c(9)), None], &mut scratch));
    }

    #[test]
    fn scratch_is_reusable_across_plans() {
        let inst = Instance::from_atoms((0..5).map(|i| atom(0, vec![c(i), c(i + 1)])));
        let p1 = MatchPlan::compile(&[atom(0, vec![v(0), v(1)])], 2);
        let p2 = MatchPlan::compile(&[atom(0, vec![v(0), v(1)]), atom(0, vec![v(1), v(2)])], 3);
        let mut scratch = Scratch::new();
        let mut n1 = 0;
        p1.for_each_hom(&inst, &mut scratch, |_| {
            n1 += 1;
            ControlFlow::Continue(())
        });
        let mut n2 = 0;
        p2.for_each_hom(&inst, &mut scratch, |_| {
            n2 += 1;
            ControlFlow::Continue(())
        });
        assert_eq!((n1, n2), (5, 4));
    }
}
