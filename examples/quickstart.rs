//! Quickstart: parse a program, run the semi-oblivious chase, and decide
//! non-uniform termination — the paper's core loop in twenty lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nuchase_engine::{Engine, PreparedProgram};
use nuchase_model::{parse_program, DisplayWith};

fn main() {
    // A database plus a rule-based ontology (TGDs). Uppercase = variable,
    // head-only variables are existentially quantified.
    let mut program = parse_program(
        "
        % database
        person(alice).
        parent(alice, bob).

        % ontology
        parent(X, Y) -> person(Y).
        person(X)    -> hasparent(X, Y).     % everyone has a parent…
        hasparent(X, Y) -> person(Y).        % …who is a person (cycle!)
        ",
    )
    .expect("program parses");

    // 1. Ask the paper's question first: does the chase terminate on THIS
    //    database? (Theorem 6.4: D-weak-acyclicity, decided in graph time.)
    let finite = nuchase::decide(&program.database, &program.tgds, &mut program.symbols)
        .expect("SL ontology is decidable");
    println!("chase(D, Σ) finite? {finite}");
    assert!(!finite, "the hasparent cycle diverges on any person");

    // 2. The same ontology is harmless on data that avoids the cycle.
    let mut other = parse_program(
        "city(edinburgh).\n\
         parent(X, Y) -> person(Y).\n\
         person(X) -> hasparent(X, Y).\n\
         hasparent(X, Y) -> person(Y).",
    )
    .unwrap();
    let finite = nuchase::decide(&other.database, &other.tgds, &mut other.symbols).unwrap();
    println!("chase(D', Σ) finite? {finite}");
    assert!(finite);

    // 3. When the verdict is "finite", materialize with the chase and use
    //    the result as a universal model. The ontology is compiled ONCE
    //    into a `PreparedProgram`; the engine then chases any number of
    //    databases against it (here: one).
    let prepared = PreparedProgram::compile(other.tgds).with_uniform_verdict(finite);
    println!("prepared Σ: {}", prepared.summary());
    let engine = Engine::builder().build();
    let result = engine.chase(&prepared, &other.database);
    assert!(result.terminated());
    println!(
        "materialized {} atoms (max null depth {}):",
        result.instance.len(),
        result.max_depth()
    );
    print!("{}", result.instance.display(&other.symbols));
}
