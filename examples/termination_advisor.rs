//! Termination advisor: a small end-to-end tool over the public API.
//!
//! Given a program (database + TGDs), it reports — per the paper —
//!
//! 1. the TGD class (`SL ⊊ L ⊊ G` or general);
//! 2. the uniform verdict (weak acyclicity: terminates on *all* data);
//! 3. the non-uniform verdict for the given database
//!    (Theorems 6.4 / 7.5 / 8.3);
//! 4. the guaranteed size bound `|D| · f_C(Σ)` when finite;
//! 5. a bounded chase run confirming the verdict empirically.
//!
//! Pass a file path to analyse your own program, or run without arguments
//! for a built-in demo featuring Example 7.1 of the paper.
//!
//! ```text
//! cargo run --release --example termination_advisor [program.dlp]
//! ```

use nuchase::bounds::chase_size_bound;
use nuchase_engine::{ChaseBudget, Engine, PreparedProgram};
use nuchase_model::parse_program;

fn advise(title: &str, text: &str) {
    println!("════ {title} ════");
    let mut program = match parse_program(text) {
        Ok(p) => p,
        Err(e) => {
            println!("  parse error: {e}");
            return;
        }
    };
    let class = program.tgds.classify();
    println!(
        "  class: {} ({} TGDs, {} predicates, arity ≤ {}, |D| = {})",
        class.short_name(),
        program.tgds.len(),
        program.tgds.schema_preds().len(),
        program.tgds.max_arity(),
        program.database.len()
    );

    // Uniform termination via the critical database (exact for SL/L/G);
    // plain weak-acyclicity is only an approximation for L and G —
    // Example 7.1 is the witness.
    let uniform = nuchase::uniform(&program.tgds, &mut program.symbols)
        .map(|v| v.to_string())
        .unwrap_or_else(|_| "undecidable (general TGDs)".into());
    println!("  uniform   : terminates on all databases? {uniform}");

    match nuchase::decide(&program.database, &program.tgds, &mut program.symbols) {
        Ok(finite) => {
            println!("  non-uniform: terminates on THIS database? {finite}");
            if finite {
                let bound = chase_size_bound(program.database.len(), &program.tgds, class);
                match bound.exact {
                    Some(b) if b < 1 << 40 => {
                        println!("  guaranteed |chase(D, Σ)| ≤ {b}")
                    }
                    _ => println!(
                        "  guaranteed |chase(D, Σ)| ≤ 2^{:.1} (astronomical but finite)",
                        bound.log2
                    ),
                }
            }
            // Confirm empirically with a budgeted chase over the
            // prepared program.
            let prepared = PreparedProgram::compile(program.tgds.clone());
            let r = Engine::builder()
                .budget(ChaseBudget::atoms(100_000))
                .build()
                .chase(&prepared, &program.database);
            println!(
                "  bounded chase: {} ({} atoms, depth {})",
                if r.terminated() {
                    "terminated"
                } else {
                    "hit budget (diverging)"
                },
                r.instance.len(),
                r.max_depth()
            );
            assert!(r.terminated() || !finite);
        }
        Err(e) => println!("  non-uniform: {e}"),
    }
    println!();
}

fn main() {
    if let Some(path) = std::env::args().nth(1) {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        advise(&path, &text);
        return;
    }

    advise(
        "Example 7.1 (paper): WA is too coarse; simplification rescues it",
        "r(a, b).\nr(X, X) -> r(Z, X).",
    );
    advise(
        "successor rule on supporting data: diverges",
        "r(a, b).\nr(X, Y) -> r(Y, Z).",
    );
    advise(
        "successor rule on unrelated data: terminates",
        "q(a).\nr(X, Y) -> r(Y, Z).",
    );
    advise(
        "guarded join whose cycle dies after one step (needs gsimple types)",
        "r(a, b).\ns(b).\nr(X, Y), s(Y) -> r(Y, Z).",
    );
    advise(
        "general TGDs: undecidable in general — the advisor refuses",
        "p(a, b, b).\nr(a, a).\nr(X, Y), p(X, Z, V) -> p(Y, W, Z).",
    );
}
