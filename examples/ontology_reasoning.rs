//! Ontology-based data access (OBDA): the paper's motivating scenario.
//!
//! A company ontology in the DL-Lite fragment (simple linear TGDs) is
//! materialized over an extensional database. The interesting part is
//! *non-uniform* termination: the same ontology can be materializable or
//! not depending on the data, and the compiled UCQ decider `Q_Σ`
//! (Theorem 6.6) answers per-database in a single query evaluation.
//!
//! ```text
//! cargo run --release --example ontology_reasoning
//! ```

use nuchase::ucq::UcqDecider;
use nuchase_engine::{Engine, PreparedProgram};
use nuchase_gen::scenarios::{obda_database, obda_ontology, obda_ontology_cyclic};
use nuchase_model::{Cq, DisplayWith, SymbolTable};

fn main() {
    // ── The safe ontology terminates on every database. ──
    let mut symbols = SymbolTable::new();
    let safe = obda_ontology(&mut symbols);
    println!(
        "safe ontology ({} TGDs):\n{}",
        safe.len(),
        safe.display(&symbols)
    );
    assert!(nuchase::is_uniformly_weakly_acyclic(&safe));
    let db = obda_database(&mut symbols, 50);

    // The OBDA serving shape: one ontology compiled once, any number of
    // extensional databases materialized against it.
    let prepared = PreparedProgram::compile(safe).with_uniform_verdict(true);
    let engine = Engine::builder().build();
    let chase = engine.chase(&prepared, &db);
    assert!(chase.terminated());
    println!(
        "materialized {} extensional facts into {} atoms\n",
        db.len(),
        chase.instance.len()
    );

    // Answer a query over the materialization: employees with a dept.
    let employee = symbols.lookup_pred("employee").unwrap();
    let worksfor = symbols.lookup_pred("worksfor").unwrap();
    let q = Cq::new(vec![
        nuchase_model::Atom::new(
            employee,
            vec![nuchase_model::Term::Var(nuchase_model::VarId(0))],
        ),
        nuchase_model::Atom::new(
            worksfor,
            vec![
                nuchase_model::Term::Var(nuchase_model::VarId(0)),
                nuchase_model::Term::Var(nuchase_model::VarId(1)),
            ],
        ),
    ]);
    println!(
        "∃x∃y employee(x) ∧ worksfor(x, y): {} matches over the materialization",
        q.count_in(&chase.instance)
    );

    // ── The cyclic ontology is data-dependent. ──
    let mut symbols2 = SymbolTable::new();
    let cyclic = obda_ontology_cyclic(&mut symbols2);
    assert!(!nuchase::is_uniformly_weakly_acyclic(&cyclic));

    // Compile Q_Σ once (Theorem 6.6); deciding a database is then one
    // UCQ evaluation — AC⁰ in data complexity.
    let decider = UcqDecider::for_simple_linear(&cyclic, &symbols2).unwrap();
    println!(
        "\ncyclic ontology: Q_Σ = {}",
        decider.ucq().display(&symbols2)
    );

    let hr_data = obda_database(&mut symbols2, 50);
    println!(
        "  HR database ({} facts): materializable? {}",
        hr_data.len(),
        decider.terminates(&hr_data)
    );
    assert!(!decider.terminates(&hr_data));

    let catalog =
        nuchase_model::parse_database("product(widget).\nprice(widget, eur10).", &mut symbols2)
            .unwrap();
    println!(
        "  product catalog ({} facts): materializable? {}",
        catalog.len(),
        decider.terminates(&catalog)
    );
    assert!(decider.terminates(&catalog));
    println!("\nsame ontology, different data, different answer — non-uniform termination.");
}
