//! Data exchange: computing a universal solution with the chase.
//!
//! A schema mapping (source-to-target + target TGDs) is chased over a
//! source instance; the result is a *universal solution* (Fagin et al.) —
//! the original application of the chase that the paper builds on. Labeled
//! nulls in the target stand for unknown values invented by existential
//! heads; the semi-oblivious chase reuses one null per `(rule, frontier)`,
//! which is what keeps the solution finite here.
//!
//! The mapping is compiled **once** ([`PreparedProgram`]) and served by
//! one [`Engine`] across every source instance — including an
//! *incremental* load: when late source rows arrive, the open
//! [`nuchase_engine::ChaseSession`] chases just the delta instead of
//! re-materializing from scratch.
//!
//! ```text
//! cargo run --release --example data_exchange
//! ```

use nuchase_engine::{Engine, PreparedProgram};
use nuchase_gen::scenarios::{exchange_mapping, exchange_source};
use nuchase_model::{DisplayWith, SymbolTable};

fn main() {
    let mut symbols = SymbolTable::new();
    let mapping = exchange_mapping(&mut symbols);
    println!("schema mapping:\n{}", mapping.display(&symbols));

    // Weak acyclicity guarantees termination on EVERY source instance —
    // the classical, uniform guarantee. Record it on the prepared
    // program: compile once, serve every source below.
    assert!(nuchase::is_uniformly_weakly_acyclic(&mapping));
    println!("mapping is weakly acyclic: chase terminates on all sources\n");
    let prepared = PreparedProgram::compile(mapping).with_uniform_verdict(true);
    let engine = Engine::builder().build();

    let source = exchange_source(&mut symbols, 12);
    println!("source instance ({} facts):", source.len());
    print!("{}", source.display(&symbols));

    let mut session = engine.session(&prepared, &source);
    session.run();
    assert!(session.terminated());

    // Report the target relations (everything not in the source schema).
    println!("\nuniversal solution ({} atoms):", session.instance().len());
    let mut shown = 0;
    for atom in session.instance().iter() {
        let name = symbols.pred_name(atom.pred);
        if !name.starts_with("s_") {
            println!("  {}", atom.display(&symbols));
            shown += 1;
        }
    }
    println!(
        "\n{} target atoms, {} invented nulls, max null depth {}",
        shown,
        session.stats().nulls_created,
        session.nulls().max_depth()
    );

    // A late batch of source rows arrives: chase the DELTA against the
    // open session instead of re-materializing. (The semi-oblivious
    // chase is confluent, so the incremental result is the canonical
    // chase of the union.)
    let before = session.instance().len();
    let late = exchange_source(&mut symbols, 16);
    let added = session.add_atoms(late.iter().map(|a| a.to_atom()));
    session.resume();
    assert!(session.terminated());
    println!(
        "incremental load: {added} late source rows -> {} new atoms (runs: {})",
        session.instance().len() - before,
        session.runs()
    );
    let result = session.finish();
    assert!(result.is_model_of(prepared.tgds()));

    // Size check from the paper: the solution is LINEAR in the source
    // (Theorem 6.4(2) — here uniformly, since the mapping is in CT). The
    // same engine + prepared mapping serve the larger source too.
    let bigger = {
        let mut s2 = SymbolTable::new();
        let m2 = exchange_mapping(&mut s2);
        let prepared2 = PreparedProgram::compile(m2);
        let src = exchange_source(&mut s2, 120);
        let r = engine.chase(&prepared2, &src);
        assert!(r.terminated());
        (src.len(), r.instance.len())
    };
    println!(
        "scaling: source {} → solution {} atoms ({}× the 12-row run)",
        bigger.0,
        bigger.1,
        bigger.1 / result.instance.len().max(1)
    );
}
