//! Data exchange: computing a universal solution with the chase.
//!
//! A schema mapping (source-to-target + target TGDs) is chased over a
//! source instance; the result is a *universal solution* (Fagin et al.) —
//! the original application of the chase that the paper builds on. Labeled
//! nulls in the target stand for unknown values invented by existential
//! heads; the semi-oblivious chase reuses one null per `(rule, frontier)`,
//! which is what keeps the solution finite here.
//!
//! ```text
//! cargo run -p nuchase-bench --example data_exchange
//! ```

use nuchase_engine::semi_oblivious_chase;
use nuchase_gen::scenarios::{exchange_mapping, exchange_source};
use nuchase_model::{DisplayWith, SymbolTable};

fn main() {
    let mut symbols = SymbolTable::new();
    let mapping = exchange_mapping(&mut symbols);
    println!("schema mapping:\n{}", mapping.display(&symbols));

    // Weak acyclicity guarantees termination on EVERY source instance —
    // the classical, uniform guarantee.
    assert!(nuchase::is_uniformly_weakly_acyclic(&mapping));
    println!("mapping is weakly acyclic: chase terminates on all sources\n");

    let source = exchange_source(&mut symbols, 12);
    println!("source instance ({} facts):", source.len());
    print!("{}", source.display(&symbols));

    let result = semi_oblivious_chase(&source, &mapping, 100_000);
    assert!(result.terminated());
    assert!(result.is_model_of(&mapping));

    // Report the target relations (everything not in the source schema).
    println!("\nuniversal solution ({} atoms):", result.instance.len());
    let mut shown = 0;
    for atom in result.instance.iter() {
        let name = symbols.pred_name(atom.pred);
        if !name.starts_with("s_") {
            println!("  {}", atom.display(&symbols));
            shown += 1;
        }
    }
    println!(
        "\n{} target atoms, {} invented nulls, max null depth {}",
        shown,
        result.stats.nulls_created,
        result.max_depth()
    );

    // Size check from the paper: the solution is LINEAR in the source
    // (Theorem 6.4(2) — here uniformly, since the mapping is in CT).
    let bigger = {
        let mut s2 = SymbolTable::new();
        let m2 = exchange_mapping(&mut s2);
        let src = exchange_source(&mut s2, 120);
        let r = semi_oblivious_chase(&src, &m2, 1_000_000);
        assert!(r.terminated());
        (src.len(), r.instance.len())
    };
    println!(
        "scaling: source {} → solution {} atoms ({}× the 12-row run)",
        bigger.0,
        bigger.1,
        bigger.1 / result.instance.len().max(1)
    );
}
