//! Umbrella package for the `nuchase` workspace.
//!
//! This crate exists only so that the workspace root can own the
//! cross-crate integration tests under `tests/` and the runnable
//! examples under `examples/`. All functionality lives in the member
//! crates (`nuchase-model`, `nuchase-engine`, `nuchase`, `nuchase-gen`,
//! `nuchase-rewrite`, `nuchase-bench`, `nuchase-cli`).
