//! Umbrella package for the `nuchase` workspace.
//!
//! This crate exists only so that the workspace root can own the
//! cross-crate integration tests under `tests/` and the runnable
//! examples under `examples/`. All functionality lives in the member
//! crates (`nuchase-model`, `nuchase-engine`, `nuchase`, `nuchase-gen`,
//! `nuchase-rewrite`, `nuchase-bench`, `nuchase-cli`).
//!
//! The engine's public surface is the prepared-program API
//! (`nuchase_engine::session`): compile a TGD set once into a
//! `PreparedProgram`, build an `Engine` (persistent worker pool,
//! recycled buffers), and drive `ChaseSession`s — budgeted runs,
//! incremental `add_atoms`/`resume`, cancellation, deadlines. The
//! examples demonstrate it end to end; `tests/session_resume.rs` pins
//! the resume guarantees differentially.
