//! Differential tests of the multi-session scheduler (`engine::sched`):
//! many sessions in flight on ONE engine — blocking sessions interleaved
//! at round boundaries, and non-blocking submitted jobs — must each be
//! byte-identical to a solo run of the same chase at the same
//! configuration. The canonical task decomposition is a pure function of
//! the round, never of worker count, queue order, or who else shares the
//! pool; these tests pin that the scheduler swap kept it that way.

use nuchase_engine::{
    ApplyPath, ChaseBudget, ChaseConfig, ChaseOutcome, ChaseResult, ChaseVariant, Engine,
    PreparedProgram, RunLimits,
};
use nuchase_model::{parse_program, Program};

/// A chain workload with transitivity and an existential rule — several
/// rounds, nulls, and a size that scales with `n` so each concurrent
/// session chases a visibly different instance.
fn chain_program(n: usize) -> Program {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("e(c{i}, c{}).\n", i + 1));
    }
    text.push_str("e(X, Y), e(Y, Z) -> e(X, Z).\n");
    text.push_str("e(X, Y) -> n(X, W).\n");
    text.push_str("n(X, W) -> m(W).\n");
    parse_program(&text).unwrap()
}

fn config(threads: usize, path: ApplyPath) -> ChaseConfig {
    ChaseConfig {
        variant: ChaseVariant::SemiOblivious,
        threads,
        apply_path: path,
        budget: ChaseBudget::atoms(50_000),
        ..Default::default()
    }
}

/// Byte-identity at the strength the scheduler guarantees: same atoms at
/// the same indexes, same null count, same round count.
fn assert_identical(solo: &ChaseResult, shared: &ChaseResult, label: &str) {
    assert!(
        solo.instance.indexed_eq(&shared.instance),
        "{label}: instance diverged"
    );
    assert_eq!(solo.nulls.len(), shared.nulls.len(), "{label}: null count");
    assert_eq!(solo.stats.rounds, shared.stats.rounds, "{label}: rounds");
}

const APPLY_PATHS: [ApplyPath; 2] = [ApplyPath::Pipeline, ApplyPath::Fused];
const THREADS: [usize; 3] = [1, 2, 7];

/// N blocking sessions interleaved round-by-round on one engine (each
/// stepped via `run_limited(max_rounds: 1)` in rotation) finish
/// byte-identically to solo runs at the same config on fresh engines.
#[test]
fn interleaved_sessions_are_byte_identical_to_solo_runs() {
    let programs: Vec<Program> = vec![chain_program(4), chain_program(7), chain_program(11)];
    let prepared: Vec<PreparedProgram> = programs
        .iter()
        .map(|p| PreparedProgram::compile(p.tgds.clone()))
        .collect();
    for threads in THREADS {
        for path in APPLY_PATHS {
            let cfg = config(threads, path);
            let label = format!("threads {threads} {path:?}");
            let solo: Vec<ChaseResult> = programs
                .iter()
                .zip(&prepared)
                .map(|(p, prog)| Engine::from_config(&cfg).chase(prog, &p.database))
                .collect();
            assert!(solo.iter().all(ChaseResult::terminated), "{label}: solo");

            let engine = Engine::from_config(&cfg);
            let mut sessions: Vec<_> = programs
                .iter()
                .zip(&prepared)
                .map(|(p, prog)| Some(engine.session(prog, &p.database)))
                .collect();
            let one_round = RunLimits {
                max_rounds: Some(1),
                ..Default::default()
            };
            let mut done: Vec<Option<ChaseResult>> = (0..sessions.len()).map(|_| None).collect();
            // Round-robin: one round of each live session per lap, so the
            // engine always holds several mid-chase sessions at once.
            while done.iter().any(Option::is_none) {
                for (i, slot) in sessions.iter_mut().enumerate() {
                    let Some(session) = slot.as_mut() else {
                        continue;
                    };
                    match session.run_limited(&one_round) {
                        ChaseOutcome::Paused => {}
                        ChaseOutcome::Terminated => {
                            done[i] = Some(slot.take().unwrap().finish());
                        }
                        other => panic!("{label}: session {i} stopped with {other:?}"),
                    }
                }
            }
            for (i, result) in done.into_iter().enumerate() {
                assert_identical(&solo[i], &result.unwrap(), &format!("{label} session {i}"));
            }
        }
    }
}

/// Submitted (non-blocking) jobs on a busy engine return byte-identical
/// results to blocking solo runs: many jobs queued before any is
/// awaited, across thread counts and apply paths.
#[test]
fn submitted_jobs_are_byte_identical_to_blocking_runs() {
    let programs: Vec<Program> = (0..6).map(|i| chain_program(3 + 2 * i)).collect();
    let prepared: Vec<PreparedProgram> = programs
        .iter()
        .map(|p| PreparedProgram::compile(p.tgds.clone()))
        .collect();
    for threads in THREADS {
        for path in APPLY_PATHS {
            let cfg = config(threads, path);
            let label = format!("threads {threads} {path:?}");
            let solo: Vec<ChaseResult> = programs
                .iter()
                .zip(&prepared)
                .map(|(p, prog)| Engine::from_config(&cfg).chase(prog, &p.database))
                .collect();

            let engine = Engine::from_config(&cfg);
            let handles: Vec<_> = programs
                .iter()
                .zip(&prepared)
                .map(|(p, prog)| engine.submit(prog, &p.database))
                .collect();
            for (i, handle) in handles.into_iter().enumerate() {
                let result = handle.wait();
                assert_eq!(result.outcome, ChaseOutcome::Terminated, "{label}: job {i}");
                assert_identical(&solo[i], &result, &format!("{label} job {i}"));
            }
        }
    }
}

/// `submit` on a sequential (`threads: 0`) engine spins the scheduler up
/// lazily — the job still runs off-thread and matches the blocking run.
#[test]
fn submit_on_sequential_engine_is_lazy_and_identical() {
    let p = chain_program(8);
    let prepared = PreparedProgram::compile(p.tgds.clone());
    let cfg = config(0, ApplyPath::Pipeline);
    let engine = Engine::from_config(&cfg);
    let solo = engine.chase(&prepared, &p.database);
    let result = engine.submit(&prepared, &p.database).wait();
    assert_eq!(result.outcome, ChaseOutcome::Terminated);
    assert_identical(&solo, &result, "lazy scheduler job");
}

/// Fairness smoke: small jobs queued BEHIND a much larger one still
/// complete (the scheduler slices jobs in round-boundary quanta instead
/// of running the queue head to completion), every result identical to
/// its solo run, and the queue wait every job reports stays part of the
/// latency accounting (wait + wall covers submit-to-result).
#[test]
fn small_jobs_behind_a_large_one_are_not_starved() {
    let big = chain_program(48);
    let big_prepared = PreparedProgram::compile(big.tgds.clone());
    let smalls: Vec<Program> = (0..8).map(|_| chain_program(4)).collect();
    let small_prepared = PreparedProgram::compile(smalls[0].tgds.clone());
    let cfg = config(2, ApplyPath::Pipeline);
    let engine = Engine::from_config(&cfg);
    let solo_big = engine.chase(&big_prepared, &big.database);
    let solo_small = engine.chase(&small_prepared, &smalls[0].database);

    let big_handle = engine.submit(&big_prepared, &big.database);
    let small_handles: Vec<_> = smalls
        .iter()
        .map(|p| engine.submit(&small_prepared, &p.database))
        .collect();
    for (i, handle) in small_handles.into_iter().enumerate() {
        let result = handle.wait();
        assert_eq!(
            result.outcome,
            ChaseOutcome::Terminated,
            "small job {i} starved"
        );
        assert_identical(&solo_small, &result, &format!("small job {i}"));
        assert!(
            result.stats.sched_wait_secs >= 0.0 && result.stats.wall_secs > 0.0,
            "small job {i}: latency accounting"
        );
    }
    let big_result = big_handle.wait();
    assert_eq!(big_result.outcome, ChaseOutcome::Terminated, "big job");
    assert_identical(&solo_big, &big_result, "big job");
}
