//! Cross-crate differential tests: independent implementations of the
//! same paper object must agree.

use nuchase::check_wa::check_not_weakly_acyclic;
use nuchase::ucq::UcqDecider;
use nuchase::{decide_g, decide_l, decide_sl, is_weakly_acyclic};
use nuchase_engine::semi_oblivious_chase;
use nuchase_gen::{random_program, RandomConfig};
use nuchase_model::TgdClass;

/// SCC-based weak-acyclicity vs the determinized Algorithm 1, on a random
/// suite across all classes (both are defined for arbitrary TGDs).
#[test]
fn wa_deciders_agree_on_random_programs() {
    for class in [TgdClass::SimpleLinear, TgdClass::Linear, TgdClass::Guarded] {
        for seed in 0..80u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let scc = is_weakly_acyclic(&p.database, &p.tgds);
            let alg1 = !check_not_weakly_acyclic(&p.database, &p.tgds);
            assert_eq!(scc, alg1, "class {class:?} seed {seed}");
        }
    }
}

/// The SL syntactic decider vs chase ground truth on random programs.
#[test]
fn sl_decider_vs_chase_ground_truth() {
    let mut checked = 0;
    for seed in 0..100u64 {
        let p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear,
            seed,
            ..Default::default()
        });
        let verdict = decide_sl(&p.database, &p.tgds).unwrap();
        let r = semi_oblivious_chase(&p.database, &p.tgds, 50_000);
        if r.terminated() {
            assert!(
                verdict,
                "seed {seed}: chase finite but decider says infinite"
            );
        } else {
            assert!(
                !verdict,
                "seed {seed}: chase exceeded budget but decider says finite"
            );
        }
        checked += 1;
    }
    assert_eq!(checked, 100);
}

/// The L decider (simplification) vs chase ground truth.
#[test]
fn l_decider_vs_chase_ground_truth() {
    for seed in 0..100u64 {
        let mut p = random_program(&RandomConfig {
            class: TgdClass::Linear,
            seed,
            ..Default::default()
        });
        let verdict = decide_l(&p.database, &p.tgds, &mut p.symbols).unwrap();
        let r = semi_oblivious_chase(&p.database, &p.tgds, 50_000);
        assert_eq!(verdict, r.terminated(), "seed {seed}");
    }
}

/// The G decider (gsimple) vs chase ground truth.
#[test]
fn g_decider_vs_chase_ground_truth() {
    for seed in 0..50u64 {
        let mut p = random_program(&RandomConfig {
            class: TgdClass::Guarded,
            seed,
            ..Default::default()
        });
        let Ok(verdict) = decide_g(&p.database, &p.tgds, &mut p.symbols) else {
            continue; // rewrite budget (rare, pathological schemas)
        };
        let r = semi_oblivious_chase(&p.database, &p.tgds, 50_000);
        assert_eq!(verdict, r.terminated(), "seed {seed}");
    }
}

/// The compiled UCQ deciders vs the graph-based deciders, SL and L.
#[test]
fn ucq_deciders_agree_with_graph_deciders() {
    for seed in 0..100u64 {
        let p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear,
            seed,
            ..Default::default()
        });
        let ucq = UcqDecider::for_simple_linear(&p.tgds, &p.symbols).unwrap();
        let graph = decide_sl(&p.database, &p.tgds).unwrap();
        assert_eq!(ucq.terminates(&p.database), graph, "SL seed {seed}");
    }
    for seed in 0..100u64 {
        let mut p = random_program(&RandomConfig {
            class: TgdClass::Linear,
            seed,
            ..Default::default()
        });
        let ucq = UcqDecider::for_linear(&p.tgds, &mut p.symbols).unwrap();
        let graph = decide_l(&p.database, &p.tgds, &mut p.symbols).unwrap();
        assert_eq!(ucq.terminates(&p.database), graph, "L seed {seed}");
    }
}

/// Crafted linear programs stressing the equality-pattern UCQ of
/// Theorem 7.7 (repeated body variables; facts refining/coarsening the
/// critical patterns).
#[test]
fn ucq_linear_crafted_patterns() {
    use nuchase_model::parse_program;
    for (rules, cases) in [
        (
            // Example 7.1: never diverges.
            "r(X, X) -> r(Z, X).",
            vec![("r(a, a).", true), ("r(a, b).", true)],
        ),
        (
            // Diagonal loop: r(t,t) regenerates diagonals forever.
            "r(X, X) -> r(X, Z).
r(X, Y) -> r(Y, Y).",
            vec![("r(a, b).", false), ("r(a, a).", false), ("s(a).", true)],
        ),
        (
            // Successor rule: any r-fact (diagonal or not) diverges.
            "r(X, Y) -> r(Y, Z).",
            vec![("r(a, a).", false), ("r(a, b).", false), ("q(a).", true)],
        ),
        (
            // Fires only on triples with pattern (1,1,2); the produced
            // atom has pattern (1,2,3) and never re-fires.
            "t(X, X, Y) -> t(Y, Z, W).",
            vec![
                ("t(a, a, b).", true),
                ("t(a, b, c).", true),
                ("t(a, a, a).", true),
            ],
        ),
        (
            // Same body, but the head re-creates the dangerous pattern.
            "t(X, X, Y) -> t(Y, Y, Z).",
            vec![("t(a, a, b).", false), ("t(a, b, c).", true)],
        ),
    ] {
        let mut base = parse_program(rules).unwrap();
        let ucq = UcqDecider::for_linear(&base.tgds, &mut base.symbols).unwrap();
        for (db_text, expect) in cases {
            let mut symbols = base.symbols.clone();
            let db = nuchase_model::parse_database(db_text, &mut symbols).unwrap();
            // Cross-check the fixture against the chase itself.
            let truth = semi_oblivious_chase(&db, &base.tgds, 30_000).terminated();
            assert_eq!(truth, expect, "fixture wrong: {rules} on {db_text}");
            assert_eq!(
                ucq.terminates(&db),
                expect,
                "UCQ decider wrong: {rules} on {db_text}"
            );
            // And the graph decider agrees too.
            let mut s2 = symbols.clone();
            assert_eq!(
                nuchase::decide_l(&db, &base.tgds, &mut s2).unwrap(),
                expect,
                "graph decider wrong: {rules} on {db_text}"
            );
        }
    }
}

/// The L decider must agree with the SL decider on SL inputs (SL ⊆ L),
/// and the G decider with both on SL inputs (SL ⊆ G).
#[test]
fn deciders_agree_down_the_class_ladder() {
    for seed in 0..60u64 {
        let mut p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear,
            seed,
            ..Default::default()
        });
        let sl = decide_sl(&p.database, &p.tgds).unwrap();
        let l = decide_l(&p.database, &p.tgds, &mut p.symbols).unwrap();
        assert_eq!(sl, l, "SL vs L, seed {seed}");
        let g = decide_g(&p.database, &p.tgds, &mut p.symbols).unwrap();
        assert_eq!(sl, g, "SL vs G, seed {seed}");
    }
}

/// `complete(D, Σ)` vs the restriction of a terminating chase, on random
/// guarded programs.
#[test]
fn completion_vs_terminating_chase() {
    let mut checked = 0;
    for seed in 0..60u64 {
        let mut p = random_program(&RandomConfig {
            class: TgdClass::Guarded,
            seed,
            ..Default::default()
        });
        let r = semi_oblivious_chase(&p.database, &p.tgds, 30_000);
        if !r.terminated() {
            continue;
        }
        let complete = nuchase_rewrite::complete(&p.database, &p.tgds, &mut p.symbols).unwrap();
        let dom: Vec<nuchase_model::Term> = p.database.dom_iter().collect();
        let reference: nuchase_model::Instance = r
            .instance
            .iter()
            .filter(|a| a.args.iter().all(|t| dom.contains(t)))
            .map(|a| a.to_atom())
            .collect();
        assert!(
            complete.set_eq(&reference),
            "seed {seed}: complete() deviates from chase restriction"
        );
        checked += 1;
    }
    assert!(checked > 20, "too few terminating samples ({checked})");
}

/// Three engines, one result: the preserved seed baseline, the
/// sequential compiled-plan engine, and the parallel executor must agree
/// on the chase of random programs (atom set, null count, fired-trigger
/// count) — and the two production engines must agree byte-for-byte.
#[test]
fn parallel_executor_agrees_with_baseline_and_sequential() {
    use nuchase_engine::{baseline_semi_oblivious_chase, chase, ChaseBudget, ChaseConfig};
    // Default to a 2-worker pool; the CI matrix overrides via
    // NUCHASE_THREADS (1 and 4) so the bypass path and a wider pool are
    // both exercised against the seed baseline.
    let pool_threads = std::env::var("NUCHASE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2);
    let mut checked = 0;
    for class in [TgdClass::SimpleLinear, TgdClass::Linear, TgdClass::Guarded] {
        for seed in 0..20u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let cfg = ChaseConfig {
                budget: ChaseBudget::atoms(20_000),
                ..Default::default()
            };
            let sequential = chase(&p.database, &p.tgds, &cfg);
            let parallel = chase(
                &p.database,
                &p.tgds,
                &ChaseConfig {
                    threads: pool_threads,
                    ..cfg
                },
            );
            assert_eq!(
                sequential.outcome, parallel.outcome,
                "{class:?} seed {seed}"
            );
            assert!(
                sequential.instance.indexed_eq(&parallel.instance),
                "{class:?} seed {seed}: parallel deviates from sequential"
            );
            if !sequential.terminated() {
                continue;
            }
            let baseline = baseline_semi_oblivious_chase(&p.database, &p.tgds, 20_000);
            assert!(
                baseline.instance.set_eq(&parallel.instance),
                "{class:?} seed {seed}: parallel deviates from the seed baseline"
            );
            assert_eq!(
                baseline.stats.triggers_fired, parallel.stats.triggers_fired,
                "{class:?} seed {seed}"
            );
            assert_eq!(
                baseline.nulls.len(),
                parallel.nulls.len(),
                "{class:?} seed {seed}"
            );
            checked += 1;
        }
    }
    assert!(checked > 30, "too few terminating samples ({checked})");
}

/// The columnar batch enumeration path vs the per-trigger backtracking
/// search on a transitive-closure workload whose later rounds are wide
/// enough to cross the batch floor naturally — the shape the batch path
/// exists for. Forced on, and Auto with a floor the workload crosses,
/// both against an explicit per-trigger reference, at thread counts
/// 0 (sequential), 1 (single-worker tasks), and 2 (pool).
#[test]
fn batch_enumeration_agrees_on_wide_transitive_closure_rounds() {
    use nuchase_engine::{chase, BatchEnum, ChaseBudget, ChaseConfig};
    use nuchase_model::{Atom, Instance, SymbolTable, Term, Tgd, TgdSet, VarId};
    let n = 160u32;
    let mut symbols = SymbolTable::new();
    let e = symbols.pred_unchecked("e", 2);
    let mut db = Instance::new();
    for i in 0..n {
        let a = Term::Const(symbols.constant(&format!("n{i}")));
        let b = Term::Const(symbols.constant(&format!("n{}", i + 1)));
        db.insert(Atom::new(e, vec![a, b]));
    }
    let v = |i: u32| Term::Var(VarId(i));
    let tgd = Tgd::new(
        vec![
            Atom::new(e, vec![v(0), v(1)]),
            Atom::new(e, vec![v(1), v(2)]),
        ],
        vec![Atom::new(e, vec![v(0), v(2)])],
    )
    .unwrap();
    let tgds = TgdSet::new(vec![tgd]);
    let base = ChaseConfig {
        budget: ChaseBudget::atoms(40_000),
        batch_enum: BatchEnum::Off,
        ..Default::default()
    };
    let reference = chase(&db, &tgds, &base);
    assert!(reference.terminated());
    // Closure of a 161-node chain: one edge per ordered pair.
    let nodes = n as usize + 1;
    assert_eq!(reference.instance.len(), nodes * (nodes - 1) / 2);
    for threads in [0usize, 1, 2] {
        let legs = [
            (
                "forced on",
                ChaseConfig {
                    batch_enum: BatchEnum::On,
                    threads,
                    ..base
                },
            ),
            (
                "auto past floor",
                ChaseConfig {
                    batch_enum: BatchEnum::Auto,
                    batch_delta_min: 1024,
                    threads,
                    ..base
                },
            ),
        ];
        for (label, cfg) in legs {
            let batched = chase(&db, &tgds, &cfg);
            let label = format!("{label}, {threads} threads");
            assert_eq!(reference.outcome, batched.outcome, "{label}: outcome");
            assert!(
                reference.instance.indexed_eq(&batched.instance),
                "{label}: batch path deviates from per-trigger"
            );
            assert_eq!(reference.stats.rounds, batched.stats.rounds, "{label}");
            assert_eq!(
                reference.stats.triggers_considered, batched.stats.triggers_considered,
                "{label}: considered"
            );
            assert_eq!(
                reference.stats.triggers_fired, batched.stats.triggers_fired,
                "{label}: fired"
            );
            assert_eq!(reference.nulls.len(), batched.nulls.len(), "{label}");
        }
    }
}

/// Oblivious ⊇ semi-oblivious ⊇ restricted on terminating runs (result
/// sizes; the oblivious chase fires strictly more triggers).
#[test]
fn chase_variant_size_ordering() {
    use nuchase_engine::{chase, ChaseConfig, ChaseVariant};
    for seed in 0..40u64 {
        let p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear,
            seed,
            ..Default::default()
        });
        let run = |variant| {
            chase(
                &p.database,
                &p.tgds,
                &ChaseConfig {
                    variant,
                    ..Default::default()
                },
            )
        };
        let so = run(ChaseVariant::SemiOblivious);
        if !so.terminated() {
            continue;
        }
        let ob = run(ChaseVariant::Oblivious);
        let re = run(ChaseVariant::Restricted);
        if ob.terminated() {
            assert!(ob.instance.len() >= so.instance.len(), "seed {seed}");
        }
        if re.terminated() {
            assert!(re.instance.len() <= so.instance.len(), "seed {seed}");
        }
    }
}
