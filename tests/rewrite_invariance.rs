//! Propositions 7.3 and 8.1 as executable invariants: simplification and
//! linearization preserve chase finiteness and the maximal term depth.

use nuchase_engine::semi_oblivious_chase;
use nuchase_gen::{random_program, RandomConfig};
use nuchase_model::{parse_program, TgdClass};
use nuchase_rewrite::{linearize, simplify};

/// Prop 7.3 on a hand-picked linear suite covering the tricky cases.
#[test]
fn simplification_invariance_crafted() {
    for text in [
        "r(a, b).\nr(X, X) -> r(Z, X).",                      // Example 7.1
        "r(a, a).\nr(X, X) -> r(Z, X).",                      // diagonal data
        "r(a, b).\nr(X, Y) -> r(Y, Z).",                      // diverging
        "r(a, b).\nr(X, X) -> r(X, Z).\nr(X, Y) -> r(Y, Y).", // diagonal loop
        "r(a, b, a).\nr(X, Y, X) -> s(Y, X).\ns(X, Y) -> r(X, X, Y).",
        "p(a).\np(X) -> q(X, X).\nq(X, Y) -> p(Y).",
    ] {
        let mut p = parse_program(text).unwrap();
        let orig = semi_oblivious_chase(&p.database, &p.tgds, 30_000);
        let s = simplify(&p.database, &p.tgds, &mut p.symbols).unwrap();
        let simp = semi_oblivious_chase(&s.database, &s.tgds, 60_000);
        assert_eq!(
            orig.terminated(),
            simp.terminated(),
            "finiteness differs on:\n{text}"
        );
        if orig.terminated() {
            assert_eq!(
                orig.max_depth(),
                simp.max_depth(),
                "maxdepth differs on:\n{text}"
            );
        }
    }
}

/// Prop 7.3 on random linear programs.
#[test]
fn simplification_invariance_random() {
    for seed in 0..80u64 {
        let mut p = random_program(&RandomConfig {
            class: TgdClass::Linear,
            seed,
            ..Default::default()
        });
        let orig = semi_oblivious_chase(&p.database, &p.tgds, 30_000);
        let s = simplify(&p.database, &p.tgds, &mut p.symbols).unwrap();
        let simp = semi_oblivious_chase(&s.database, &s.tgds, 60_000);
        assert_eq!(orig.terminated(), simp.terminated(), "seed {seed}");
        if orig.terminated() {
            assert_eq!(orig.max_depth(), simp.max_depth(), "seed {seed}");
        }
    }
}

/// Prop 8.1 on a crafted guarded suite.
#[test]
fn linearization_invariance_crafted() {
    for text in [
        "r(a, b).\nr(X, Y) -> s(Y, Z).\ns(Y, Z) -> t(Y).",
        "r(a, b).\ns(a).\nr(X, Y), s(X) -> r(Y, Z), s(Y).", // diverging
        "r(a, b).\ns(b).\nr(X, Y), s(Y) -> r(Y, Z).",       // dies after a step
        "r(a, b).\nr(X, Y) -> s(X, Y, Z).\ns(X, Y, Z) -> r(Y, X).",
        "e(a, b).\ne(b, c).\ne(X, Y) -> p(X).\np(X) -> q(X).",
    ] {
        let mut p = parse_program(text).unwrap();
        let orig = semi_oblivious_chase(&p.database, &p.tgds, 20_000);
        let lin = linearize(&p.database, &p.tgds, &mut p.symbols).unwrap();
        let linc = semi_oblivious_chase(&lin.database, &lin.tgds, 40_000);
        assert_eq!(
            orig.terminated(),
            linc.terminated(),
            "finiteness differs on:\n{text}"
        );
        if orig.terminated() {
            assert_eq!(
                orig.max_depth(),
                linc.max_depth(),
                "maxdepth differs on:\n{text}"
            );
        }
    }
}

/// Prop 8.1 on random guarded programs.
#[test]
fn linearization_invariance_random() {
    let mut checked = 0;
    for seed in 0..60u64 {
        let mut p = random_program(&RandomConfig {
            class: TgdClass::Guarded,
            seed,
            ..Default::default()
        });
        let orig = semi_oblivious_chase(&p.database, &p.tgds, 20_000);
        let Ok(lin) = linearize(&p.database, &p.tgds, &mut p.symbols) else {
            continue;
        };
        let linc = semi_oblivious_chase(&lin.database, &lin.tgds, 40_000);
        assert_eq!(orig.terminated(), linc.terminated(), "seed {seed}");
        if orig.terminated() {
            assert_eq!(orig.max_depth(), linc.max_depth(), "seed {seed}");
        }
        checked += 1;
    }
    assert!(checked > 30, "only {checked} samples linearized");
}

/// gsimple composes both invariances (Thm 8.3's reduction path).
#[test]
fn gsimple_invariance() {
    for text in [
        "r(a, b).\nr(X, Y) -> s(Y, Z).\ns(Y, Z) -> t(Y).",
        "r(a, b).\ns(a).\nr(X, Y), s(X) -> r(Y, Z), s(Y).",
    ] {
        let mut p = parse_program(text).unwrap();
        let orig = semi_oblivious_chase(&p.database, &p.tgds, 20_000);
        let (gs, _reg) = nuchase_rewrite::gsimple(&p.database, &p.tgds, &mut p.symbols).unwrap();
        let gsc = semi_oblivious_chase(&gs.database, &gs.tgds, 40_000);
        assert_eq!(orig.terminated(), gsc.terminated(), "{text}");
        if orig.terminated() {
            assert_eq!(orig.max_depth(), gsc.max_depth(), "{text}");
        }
    }
}

/// Simplification preserves the *number of atoms* of the chase as well?
/// No — only finiteness and depth are claimed by Prop 7.3; sizes differ
/// in general. Pin a witness so nobody "fixes" this into a wrong
/// invariant later: count atoms on a case where they genuinely differ.
#[test]
fn simplification_does_not_preserve_size() {
    // r(a,a) collapses to unary r[11](a): the simplified chase can have
    // a different atom count than the original.
    let mut p = parse_program("r(a, a).\nr(X, Y) -> s(X).\nr(X, X) -> t0.").unwrap();
    let orig = semi_oblivious_chase(&p.database, &p.tgds, 10_000);
    let s = simplify(&p.database, &p.tgds, &mut p.symbols).unwrap();
    let simp = semi_oblivious_chase(&s.database, &s.tgds, 10_000);
    assert!(orig.terminated() && simp.terminated());
    assert_eq!(orig.max_depth(), simp.max_depth());
    // Both contain the t0 witness, sizes happen to match or not — the
    // invariant we *rely on* is depth/finiteness only.
    let t0 = p.symbols.lookup_pred("t0").unwrap();
    assert!(orig.instance.iter().any(|a| a.pred == t0));
}
