//! End-to-end tests of the worked examples and named constructions in the
//! paper, spanning all crates.

use nuchase_engine::{chase, semi_oblivious_chase, ChaseBudget, ChaseConfig, ChaseOutcome};
use nuchase_model::parse_program;

/// §3: Σ = {R(x,y) → ∃z R(y,z)} on D = {R(a,b)} has only infinite chase
/// derivations.
#[test]
fn section_3_infinite_example() {
    let p = parse_program("r(a, b).\nr(X, Y) -> r(Y, Z).").unwrap();
    let r = semi_oblivious_chase(&p.database, &p.tgds, 5_000);
    assert_eq!(r.outcome, ChaseOutcome::AtomLimit);
    // Every atom is an R-atom forming a chain: depth grows linearly.
    assert!(r.max_depth() > 1_000);
}

/// §3 fairness: with σ' = R(x,y) → P(x,y) added, a valid derivation must
/// keep producing P-atoms; unfair R-only behaviour is impossible in the
/// round-based engine.
#[test]
fn section_3_fairness() {
    let p = parse_program("r(a, b).\nr(X, Y) -> r(Y, Z).\nr(X, Y) -> p(X, Y).").unwrap();
    let r = semi_oblivious_chase(&p.database, &p.tgds, 1_000);
    let p_pred = p.symbols.lookup_pred("p").unwrap();
    let p_count = r.instance.iter().filter(|a| a.pred == p_pred).count();
    // Near half the instance: fairness interleaves the copy rule.
    assert!(p_count * 3 > r.instance.len());
}

/// Proposition 4.5: maxdepth(D_n, Σ) = n − 1 (via the generator crate).
#[test]
fn proposition_4_5_depth_growth() {
    for n in [2usize, 7, 23] {
        let p = nuchase_gen::depth_family(n);
        let r = semi_oblivious_chase(&p.database, &p.tgds, 1_000_000);
        assert!(r.terminated());
        assert_eq!(r.max_depth() as usize, n - 1);
    }
}

/// Example 7.1: Σ = {R(x,x) → ∃z R(z,x)}, D = {R(a,b)}: chase(D,Σ) = D is
/// finite, yet Σ is NOT D-weakly-acyclic. The linear decider (via
/// simplification) must still answer "finite".
#[test]
fn example_7_1() {
    let mut p = parse_program("r(a, b).\nr(X, X) -> r(Z, X).").unwrap();
    let r = semi_oblivious_chase(&p.database, &p.tgds, 1_000);
    assert!(r.terminated());
    assert_eq!(r.instance.len(), 1, "no trigger fires");
    assert!(!nuchase::is_weakly_acyclic(&p.database, &p.tgds));
    assert!(nuchase::decide_l(&p.database, &p.tgds, &mut p.symbols).unwrap());
}

/// Theorem 6.5 family, exact witness count (Claim E.1):
/// `|{t̄ : R_n(t̄) ∈ chase(D, Σ_{n,m})}| = ℓ·m^{n·m}`.
#[test]
fn theorem_6_5_exact_counts() {
    for (ell, n, m) in [(1usize, 1usize, 2usize), (1, 2, 2), (3, 1, 2), (1, 1, 3)] {
        let inst = nuchase_gen::sl_family(ell, n, m);
        let r = semi_oblivious_chase(&inst.program.database, &inst.program.tgds, 4_000_000);
        assert!(r.terminated());
        let rn = inst
            .program
            .symbols
            .lookup_pred(&inst.witness_pred)
            .unwrap();
        let count = r.instance.iter().filter(|a| a.pred == rn).count();
        let expect = ell * (m as u64).pow((n * m) as u32) as usize;
        assert_eq!(count, expect, "(ℓ,n,m)=({ell},{n},{m})");
    }
}

/// Theorem 7.6 family: `|chase| ≥ ℓ·2^{n(2^m−1)}` and the R_n level holds
/// at least `ℓ·2^{2^m−1}` leaf-seeded atoms for n = 1.
#[test]
fn theorem_7_6_meets_bound() {
    for (ell, n, m) in [(1usize, 1usize, 2usize), (2, 1, 3), (1, 2, 2)] {
        let inst = nuchase_gen::l_family(ell, n, m);
        let r = semi_oblivious_chase(&inst.program.database, &inst.program.tgds, 4_000_000);
        assert!(r.terminated());
        let bound = inst.lower_bound().unwrap() as usize;
        assert!(
            r.instance.len() >= bound,
            "(ℓ,n,m)=({ell},{n},{m}): {} < {bound}",
            r.instance.len()
        );
    }
}

/// Theorem 8.4 family: the stratified counter construction meets its
/// triple-exponential bound for runnable parameters.
#[test]
fn theorem_8_4_meets_bound() {
    let inst = nuchase_gen::g_family(1, 1, 1);
    let r = semi_oblivious_chase(&inst.program.database, &inst.program.tgds, 4_000_000);
    assert!(r.terminated());
    let bound = inst.lower_bound().unwrap() as usize; // 2^{2·3} = 64
    assert!(r.instance.len() >= bound);
}

/// Appendix A: chase(D_M, Σ★) finite ⇔ M halts, both directions.
#[test]
fn appendix_a_reduction_both_directions() {
    use nuchase_gen::turing::*;
    let mut symbols = nuchase_model::SymbolTable::new();
    let tgds = sigma_star(&mut symbols);
    let halting = machine_database(&machine_count_to(1), &mut symbols);
    let r = semi_oblivious_chase(&halting, &tgds, 500_000);
    assert!(r.terminated(), "halting machine ⇒ finite chase");

    let mut symbols2 = nuchase_model::SymbolTable::new();
    let tgds2 = sigma_star(&mut symbols2);
    let looping = machine_database(&machine_run_forever(), &mut symbols2);
    let r2 = semi_oblivious_chase(&looping, &tgds2, 30_000);
    assert!(!r2.terminated(), "looping machine ⇒ infinite chase");
}

/// The guarded chase forest of §5 really is a forest: every non-root atom
/// of a guarded run has a parent that precedes it.
#[test]
fn section_5_guarded_forest_shape() {
    // A finite layered binary tree (the unlayered variant diverges).
    let p = parse_program(
        "n0(a, b).\n\
         n0(X, Y) -> n1(Y, Z), n1(Y, W).\n\
         n1(X, Y) -> n2(Y, Z), n2(Y, W).\n\
         n2(X, Y) -> n3(Y, Z), n3(Y, W).",
    )
    .unwrap();
    let r = chase(
        &p.database,
        &p.tgds,
        &ChaseConfig {
            budget: ChaseBudget::atoms(50_000),
            build_forest: true,
            ..Default::default()
        },
    );
    assert!(r.terminated());
    let f = r.forest.unwrap();
    for i in 1..f.len() {
        if let Some(parent) = f.parent(i as u32) {
            assert!(parent < i as u32, "parents precede children");
        }
    }
    // All atoms hang off the single database root.
    assert_eq!(f.tree_sizes().len(), 1);
}

/// Theorem 4.1 context (uniform case): a weakly-acyclic set terminates on
/// every database we throw at it, with size linear in |D|.
#[test]
fn uniform_termination_of_weakly_acyclic_sets() {
    let text = "e(X, Y) -> p(X, Z).\np(X, Z) -> q(Z).";
    for n in [5usize, 50] {
        let mut db_text = String::new();
        for i in 0..n {
            db_text.push_str(&format!("e(a{i}, b{i}).\n"));
        }
        let p = parse_program(&format!("{db_text}{text}")).unwrap();
        assert!(nuchase::is_uniformly_weakly_acyclic(&p.tgds));
        let r = semi_oblivious_chase(&p.database, &p.tgds, 100_000);
        assert!(r.terminated());
        assert_eq!(r.instance.len(), 3 * n);
    }
}
