//! Differential tests of the session API's resume guarantees
//! (`nuchase_engine::session`), at the strength each flow actually
//! provides:
//!
//! 1. **Soft pause / resume is byte-identical.** A session paused
//!    between rounds (`RunLimits`) and resumed must reproduce an
//!    uninterrupted run bit for bit — atoms at the same indexes, null
//!    ids, provenance, forest, and work counters — for every variant,
//!    at threads 0/1/2, on both forced apply paths.
//! 2. **`add_atoms` + `resume` is canonically identical** to a
//!    from-scratch chase of the union, for the provenance-keyed
//!    variants (semi-oblivious, oblivious): the same atom and null
//!    sets under the recursive provenance null names `⊥^z_{σ, h|fr}`.
//!    Indexes and raw ids necessarily differ (arrival order), which is
//!    exactly what the canonical comparison quotients out.
//! 3. **Restricted resume is pinned at set-equality on existential-free
//!    workloads.** Rationale: the restricted chase drops triggers whose
//!    head is *currently* satisfied, so its result genuinely depends on
//!    firing order — with existentials, an incremental order can
//!    legitimately produce a different (even differently-sized) model,
//!    and no canonical comparison exists. Without existentials the
//!    restricted chase is plain datalog saturation, order-independent
//!    as a set — that confluent fragment is what we pin.

use std::collections::BTreeMap;

use nuchase_engine::{
    chase, ChaseBudget, ChaseConfig, ChaseOutcome, ChaseResult, ChaseSession, ChaseStats,
    ChaseVariant, Engine, NullStore, PreparedProgram, RunLimits, TelemetryLevel,
};
use nuchase_gen::{random_program, RandomConfig};
use nuchase_model::{parse_program, NullId, Term, TgdClass};

const CLASSES: [TgdClass; 3] = [TgdClass::SimpleLinear, TgdClass::Linear, TgdClass::Guarded];
const APPLY_PATHS: [nuchase_engine::ApplyPath; 2] = [
    nuchase_engine::ApplyPath::Pipeline,
    nuchase_engine::ApplyPath::Fused,
];

/// Strict comparison: instance indexes, null ids, provenance, forest,
/// and counters (the soft-pause contract).
fn assert_byte_identical(a: &ChaseResult, b: &ChaseResult, label: &str) {
    assert!(a.instance.indexed_eq(&b.instance), "{label}: instance");
    assert_eq!(a.stats.rounds, b.stats.rounds, "{label}: rounds");
    assert_eq!(
        a.stats.triggers_considered, b.stats.triggers_considered,
        "{label}: considered"
    );
    assert_eq!(
        a.stats.triggers_fired, b.stats.triggers_fired,
        "{label}: fired"
    );
    assert_eq!(a.nulls.len(), b.nulls.len(), "{label}: null count");
    for i in 0..a.nulls.len() {
        let id = NullId(i as u32);
        assert_eq!(a.nulls.depth(id), b.nulls.depth(id), "{label}: depth {i}");
        assert_eq!(a.nulls.key(id), b.nulls.key(id), "{label}: key {i}");
    }
    let (pa, pb) = (
        a.provenance.as_ref().unwrap(),
        b.provenance.as_ref().unwrap(),
    );
    for idx in 0..a.instance.len() as u32 {
        assert_eq!(
            pa.derivation(idx),
            pb.derivation(idx),
            "{label}: provenance {idx}"
        );
    }
    let (fa, fb) = (a.forest.as_ref().unwrap(), b.forest.as_ref().unwrap());
    assert_eq!(fa.len(), fb.len(), "{label}: forest length");
    for idx in 0..fa.len() as u32 {
        assert_eq!(fa.parent(idx), fb.parent(idx), "{label}: parent {idx}");
    }
}

/// The canonical (id-free) name of a term: constants by symbol id,
/// nulls by their recursive provenance key `⊥^z_{σ, h|fr}` — the name
/// Definition 3.1 gives them, independent of interning order. Recursion
/// terminates because frontier-image depths strictly decrease.
fn canon_term(nulls: &NullStore, term: Term, memo: &mut BTreeMap<u32, String>) -> String {
    match term {
        Term::Const(c) => format!("c{}", c.0),
        Term::Null(n) => {
            if let Some(s) = memo.get(&n.0) {
                return s.clone();
            }
            let key = nulls
                .key(n)
                .expect("provenance-keyed variants intern every null");
            let image: Vec<String> = key
                .frontier_image
                .iter()
                .map(|&t| canon_term(nulls, t, memo))
                .collect();
            let s = format!("n[r{},z{},({})]", key.rule.0, key.var.0, image.join(","));
            memo.insert(n.0, s.clone());
            s
        }
        Term::Var(_) => unreachable!("instances are ground"),
    }
}

/// The instance as a sorted multiset-free list of canonical atom
/// strings, plus the null set as canonical-name → depth.
fn canon_forms(
    instance: &nuchase_model::Instance,
    nulls: &NullStore,
) -> (Vec<String>, BTreeMap<String, u32>) {
    let mut memo = BTreeMap::new();
    let mut atoms: Vec<String> = instance
        .iter()
        .map(|a| {
            let args: Vec<String> = a
                .args
                .iter()
                .map(|&t| canon_term(nulls, t, &mut memo))
                .collect();
            format!("p{}({})", a.pred.0, args.join(","))
        })
        .collect();
    atoms.sort();
    let mut null_set = BTreeMap::new();
    for i in 0..nulls.len() {
        let id = NullId(i as u32);
        let name = canon_term(nulls, Term::Null(id), &mut memo);
        null_set.insert(name, nulls.depth(id));
    }
    (atoms, null_set)
}

fn config(variant: ChaseVariant, threads: usize, path: nuchase_engine::ApplyPath) -> ChaseConfig {
    ChaseConfig {
        variant,
        threads,
        apply_path: path,
        budget: ChaseBudget::atoms(20_000),
        record_provenance: true,
        build_forest: true,
        ..Default::default()
    }
}

/// Drives a session to completion in soft slices of `step` atoms.
fn run_in_slices(session: &mut ChaseSession<'_, '_>, step: usize) -> ChaseOutcome {
    let mut target = session.instance().len() + step;
    loop {
        let outcome = session.run_limited(&RunLimits::atoms(target));
        if outcome != ChaseOutcome::Paused {
            return outcome;
        }
        target = session.instance().len() + step;
    }
}

/// Soft-pause/resume reproduces an uninterrupted terminating run bit
/// for bit — every variant, threads 0/1/2, both forced apply paths.
#[test]
fn paused_resume_is_byte_identical_on_terminating_runs() {
    let variants = [
        ChaseVariant::SemiOblivious,
        ChaseVariant::Oblivious,
        ChaseVariant::Restricted,
    ];
    for class in CLASSES {
        for seed in 0..4u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            for variant in variants {
                for threads in [0usize, 1, 2] {
                    for path in APPLY_PATHS {
                        let cfg = config(variant, threads, path);
                        let reference = chase(&p.database, &p.tgds, &cfg);
                        if !reference.terminated() {
                            continue;
                        }
                        let label =
                            format!("{class:?} seed {seed} {variant:?} threads {threads} {path:?}");
                        let program = PreparedProgram::compile(p.tgds.clone());
                        let engine = Engine::from_config(&cfg);
                        let mut session = engine.session(&program, &p.database);
                        let outcome = run_in_slices(&mut session, 3);
                        assert_eq!(outcome, ChaseOutcome::Terminated, "{label}");
                        let result = session.finish();
                        assert_byte_identical(&reference, &result, &label);
                    }
                }
            }
        }
    }
}

/// On a diverging chase, `k` soft slices of `r` rounds each equal one
/// run under a hard `k·r` round budget — same boundary, same bytes.
#[test]
fn paused_resume_matches_round_budget_on_diverging_runs() {
    let p = parse_program("r(a, b).\nr(X, Y) -> r(Y, Z).\nr(X, Y) -> p(X, Y).").unwrap();
    for threads in [0usize, 1, 2] {
        for path in APPLY_PATHS {
            let mut cfg = config(ChaseVariant::SemiOblivious, threads, path);
            cfg.budget.max_rounds = 30;
            let reference = chase(&p.database, &p.tgds, &cfg);
            assert_eq!(reference.outcome, ChaseOutcome::RoundLimit);

            let program = PreparedProgram::compile(p.tgds.clone());
            let engine = Engine::from_config(&cfg);
            let mut session = engine.session(&program, &p.database);
            for _ in 0..2 {
                assert_eq!(
                    session.run_limited(&RunLimits::rounds(10)),
                    ChaseOutcome::Paused
                );
            }
            // The third slice's soft cap coincides with the 30-round
            // lifetime budget; the hard budget wins the checkpoint.
            assert_eq!(
                session.run_limited(&RunLimits::rounds(10)),
                ChaseOutcome::RoundLimit
            );
            let result = session.finish();
            assert_byte_identical(
                &reference,
                &result,
                &format!("diverging threads {threads} {path:?}"),
            );
        }
    }
}

/// `add_atoms` + `resume` equals a from-scratch chase of the union,
/// canonically (atom set + null set under provenance null names), for
/// the provenance-keyed variants across threads and apply paths.
#[test]
fn add_atoms_resume_is_canonically_identical() {
    for class in CLASSES {
        for seed in 0..6u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            if p.database.len() < 3 {
                continue;
            }
            // Split the database: chase the prefix, then the rest
            // arrives as an incremental delta.
            let split = p.database.len() - 2;
            let initial: nuchase_model::Instance =
                p.database.iter().take(split).map(|a| a.to_atom()).collect();
            for variant in [ChaseVariant::SemiOblivious, ChaseVariant::Oblivious] {
                for threads in [0usize, 1, 2] {
                    for path in APPLY_PATHS {
                        let cfg = config(variant, threads, path);
                        let reference = chase(&p.database, &p.tgds, &cfg);
                        if !reference.terminated() {
                            continue;
                        }
                        let label =
                            format!("{class:?} seed {seed} {variant:?} threads {threads} {path:?}");
                        let program = PreparedProgram::compile(p.tgds.clone());
                        let engine = Engine::from_config(&cfg);
                        let mut session = engine.session(&program, &initial);
                        assert_eq!(session.run(), ChaseOutcome::Terminated, "{label}");
                        session.add_atoms(p.database.iter().skip(split).map(|a| a.to_atom()));
                        assert_eq!(session.resume(), ChaseOutcome::Terminated, "{label}");

                        let (ref_atoms, ref_nulls) =
                            canon_forms(&reference.instance, &reference.nulls);
                        let (inc_atoms, inc_nulls) =
                            canon_forms(session.instance(), session.nulls());
                        assert_eq!(ref_atoms, inc_atoms, "{label}: canonical atom set");
                        assert_eq!(ref_nulls, inc_nulls, "{label}: canonical null set");
                    }
                }
            }
        }
    }
}

/// The restricted variant's incremental guarantee, pinned at
/// set-equality on existential-free programs (see the module docs for
/// why this is the strongest honest claim: with existentials the
/// restricted chase is order-dependent, and an incremental firing order
/// may legitimately produce a different model).
#[test]
fn restricted_add_atoms_resume_set_equality_on_datalog() {
    let programs = [
        // Transitive closure + projection.
        "e(a, b).\ne(b, c).\ne(c, d).\ne(d, e2).\ne(X, Y), e(Y, Z) -> e(X, Z).\ne(X, Y) -> p(X).",
        // Mutual recursion without existentials.
        "r(a, b).\ns(b, c).\nr(X, Y), s(Y, Z) -> r(X, Z).\nr(X, Y) -> s(Y, X).",
    ];
    for text in programs {
        let p = parse_program(text).unwrap();
        let split = p.database.len() - 1;
        let initial: nuchase_model::Instance =
            p.database.iter().take(split).map(|a| a.to_atom()).collect();
        for threads in [0usize, 1, 2] {
            for path in APPLY_PATHS {
                let cfg = config(ChaseVariant::Restricted, threads, path);
                let reference = chase(&p.database, &p.tgds, &cfg);
                assert!(reference.terminated());
                let program = PreparedProgram::compile(p.tgds.clone());
                let engine = Engine::from_config(&cfg);
                let mut session = engine.session(&program, &initial);
                assert_eq!(session.run(), ChaseOutcome::Terminated);
                session.add_atoms(p.database.iter().skip(split).map(|a| a.to_atom()));
                assert_eq!(session.resume(), ChaseOutcome::Terminated);
                assert!(
                    session.instance().set_eq(&reference.instance),
                    "restricted datalog threads {threads} {path:?}"
                );
                assert_eq!(session.nulls().len(), 0, "existential-free");
            }
        }
    }
}

/// Hard-budget mid-round stops recover canonically: raise the budget,
/// resume, land on the same canonical set as an unbudgeted run — at
/// every thread count and apply path.
#[test]
fn hard_stop_recovery_is_canonical() {
    for class in CLASSES {
        for seed in 0..4u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            for threads in [0usize, 1, 2] {
                for path in APPLY_PATHS {
                    let cfg = config(ChaseVariant::SemiOblivious, threads, path);
                    let reference = chase(&p.database, &p.tgds, &cfg);
                    if !reference.terminated() || reference.instance.len() <= p.database.len() + 2 {
                        continue;
                    }
                    let label = format!("{class:?} seed {seed} threads {threads} {path:?}");
                    let program = PreparedProgram::compile(p.tgds.clone());
                    let engine = Engine::from_config(&cfg);
                    let mut session = engine.session(&program, &p.database);
                    // Stop mid-chase on a hard atom budget, then lift it.
                    session.set_budget(ChaseBudget::atoms(p.database.len() + 2));
                    assert_eq!(session.run(), ChaseOutcome::AtomLimit, "{label}");
                    session.set_budget(ChaseBudget::atoms(20_000));
                    assert_eq!(session.resume(), ChaseOutcome::Terminated, "{label}");
                    let (ref_atoms, ref_nulls) = canon_forms(&reference.instance, &reference.nulls);
                    let (inc_atoms, inc_nulls) = canon_forms(session.instance(), session.nulls());
                    assert_eq!(ref_atoms, inc_atoms, "{label}: canonical atom set");
                    assert_eq!(ref_nulls, inc_nulls, "{label}: canonical null set");
                }
            }
        }
    }
}

/// Cancellation and deadlines interrupt pooled runs cleanly too: the
/// session resumes byte-identically after the flag clears.
#[test]
fn cancel_and_deadline_resume_on_the_pool_executor() {
    let p = parse_program("r(a, b).\nr(X, Y) -> r(Y, Z).\nr(X, Y) -> q(X).").unwrap();
    let cfg = ChaseConfig {
        threads: 2,
        budget: ChaseBudget::atoms(500),
        record_provenance: true,
        build_forest: true,
        ..Default::default()
    };
    let reference = chase(&p.database, &p.tgds, &cfg);
    assert_eq!(reference.outcome, ChaseOutcome::AtomLimit);

    let program = PreparedProgram::compile(p.tgds.clone());
    let engine = Engine::from_config(&cfg);
    let mut session = engine.session(&program, &p.database);
    // Cancel before the first round, then clear and pause a few times.
    session
        .cancel_handle()
        .store(true, std::sync::atomic::Ordering::Relaxed);
    assert_eq!(session.run(), ChaseOutcome::Cancelled);
    session
        .cancel_handle()
        .store(false, std::sync::atomic::Ordering::Relaxed);
    assert_eq!(
        session.run_limited(&RunLimits::rounds(20)),
        ChaseOutcome::Paused
    );
    assert_eq!(session.resume(), ChaseOutcome::AtomLimit);
    // The hard stop is mid-round; the counters differ by the recovery
    // replay, but the materialization must match the reference set.
    assert!(session.instance().set_eq(&reference.instance));
    assert_eq!(session.nulls().len(), reference.nulls.len());
}

/// `ChaseStats::absorb` sums every counter and phase timer and takes
/// the max of the end-of-run memory gauges — the session's lifetime
/// folding contract.
#[test]
fn chase_stats_absorb_sums_counters_and_maxes_gauges() {
    let mut a = ChaseStats {
        rounds: 3,
        triggers_considered: 10,
        triggers_fired: 7,
        atoms_created: 7,
        nulls_created: 2,
        wall_secs: 1.0,
        enumerate_secs: 0.5,
        probe_secs: 0.4,
        emit_secs: 0.1,
        dedup_secs: 0.1,
        apply_secs: 0.4,
        resolve_secs: 0.1,
        commit_secs: 0.3,
        pool_secs: 0.05,
        fused_rounds: 2,
        batched_rounds: 1,
        peak_instance_bytes: 1000,
        peak_null_bytes: 100,
        instance_table_load: 0.5,
        index_spill_count: 2,
        batched_probes: 100,
        prefetch_queue_depth: 8,
        faults_injected: 1,
        spill_fallbacks: 1,
        retries: 2,
        sched_wait_secs: 0.02,
        sched_occupancy: 0.5,
    };
    let b = ChaseStats {
        rounds: 2,
        triggers_considered: 5,
        triggers_fired: 4,
        atoms_created: 4,
        nulls_created: 1,
        wall_secs: 0.5,
        enumerate_secs: 0.2,
        probe_secs: 0.2,
        emit_secs: 0.0,
        dedup_secs: 0.05,
        apply_secs: 0.25,
        resolve_secs: 0.05,
        commit_secs: 0.2,
        pool_secs: 0.0,
        fused_rounds: 0,
        batched_rounds: 2,
        peak_instance_bytes: 1500, // grows past a's peak
        peak_null_bytes: 50,       // shrinks below a's peak
        instance_table_load: 0.25,
        index_spill_count: 5,
        batched_probes: 40,
        prefetch_queue_depth: 12, // deeper queue than a's high-water mark
        faults_injected: 2,
        spill_fallbacks: 0,
        retries: 1,
        sched_wait_secs: 0.01,
        sched_occupancy: 0.25, // below a's peak occupancy
    };
    a.absorb(&b);
    assert_eq!(a.rounds, 5);
    assert_eq!(a.triggers_considered, 15);
    assert_eq!(a.triggers_fired, 11);
    assert_eq!(a.atoms_created, 11);
    assert_eq!(a.nulls_created, 3);
    assert!((a.wall_secs - 1.5).abs() < 1e-12);
    assert!((a.enumerate_secs - 0.7).abs() < 1e-12);
    assert!((a.probe_secs - 0.6).abs() < 1e-12);
    assert!((a.emit_secs - 0.1).abs() < 1e-12);
    assert!((a.dedup_secs - 0.15).abs() < 1e-12);
    assert!((a.apply_secs - 0.65).abs() < 1e-12);
    assert!((a.resolve_secs - 0.15).abs() < 1e-12);
    assert!((a.commit_secs - 0.5).abs() < 1e-12);
    assert!((a.pool_secs - 0.05).abs() < 1e-12);
    assert_eq!(a.fused_rounds, 2);
    assert_eq!(a.batched_rounds, 3);
    // Gauges are maxed, not summed: the lifetime peak is the largest
    // single-run peak.
    assert_eq!(a.peak_instance_bytes, 1500);
    assert_eq!(a.peak_null_bytes, 100);
    assert!((a.instance_table_load - 0.5).abs() < 1e-12);
    assert_eq!(a.index_spill_count, 5);
    // Probe-flow: the batched-probe count sums like a counter, the
    // queue depth maxes like a gauge.
    assert_eq!(a.batched_probes, 140);
    assert_eq!(a.prefetch_queue_depth, 12);
    // Fault counters sum like any other counter.
    assert_eq!(a.faults_injected, 3);
    assert_eq!(a.spill_fallbacks, 1);
    assert_eq!(a.retries, 3);
    // Scheduler gauges: wait time sums, peak occupancy maxes.
    assert!((a.sched_wait_secs - 0.03).abs() < 1e-12);
    assert!((a.sched_occupancy - 0.5).abs() < 1e-12);
}

/// Per-run vs lifetime statistics across pause / resume / `add_atoms`:
/// `last_run_stats()` covers only the latest run slice, `stats()` is
/// the exact absorb-fold of every slice, and an enabled telemetry
/// snapshot's per-rule trigger counts sum to the lifetime aggregate —
/// sequential and pooled.
#[test]
fn per_run_and_lifetime_stats_across_pause_resume_add_atoms() {
    let p = parse_program(
        "e(a, b).\ne(b, c).\ne(c, d).\n\
         e(X, Y), e(Y, Z) -> e(X, Z).\n\
         e(X, Y) -> m(X, W).",
    )
    .unwrap();
    for threads in [0usize, 2] {
        let cfg = ChaseConfig {
            threads,
            budget: ChaseBudget::atoms(20_000),
            telemetry: TelemetryLevel::Counters,
            ..Default::default()
        };
        let label = format!("threads {threads}");
        let program = PreparedProgram::compile(p.tgds.clone());
        let engine = Engine::from_config(&cfg);
        // Chase a prefix of the database; the last fact arrives later.
        let split = p.database.len() - 1;
        let initial: nuchase_model::Instance =
            p.database.iter().take(split).map(|a| a.to_atom()).collect();
        let mut session = engine.session(&program, &initial);

        // Slice the first chase with a soft pause, folding by hand.
        let mut folded = ChaseStats::default();
        let mut slices = 0usize;
        loop {
            let outcome = session.run_limited(&RunLimits::rounds(1));
            folded.absorb(session.last_run_stats());
            slices += 1;
            if outcome != ChaseOutcome::Paused {
                assert_eq!(outcome, ChaseOutcome::Terminated, "{label}");
                break;
            }
        }
        assert!(slices >= 2, "{label}: the pause actually sliced the run");
        assert_eq!(session.runs(), slices, "{label}: run count");
        assert_eq!(session.stats().rounds, folded.rounds, "{label}");
        assert_eq!(
            session.stats().triggers_considered,
            folded.triggers_considered,
            "{label}"
        );
        assert_eq!(
            session.stats().atoms_created,
            folded.atoms_created,
            "{label}"
        );

        // The incremental delta: one more fact, one more run.
        let before = session.stats().clone();
        session.add_atoms(p.database.iter().skip(split).map(|a| a.to_atom()));
        assert_eq!(session.resume(), ChaseOutcome::Terminated, "{label}");
        let last = session.last_run_stats().clone();
        let lifetime = session.stats().clone();
        assert!(last.triggers_fired > 0, "{label}: the delta fired triggers");
        assert_eq!(
            lifetime.rounds,
            before.rounds + last.rounds,
            "{label}: lifetime rounds are the absorb-fold"
        );
        assert_eq!(
            lifetime.triggers_considered,
            before.triggers_considered + last.triggers_considered,
            "{label}"
        );
        assert_eq!(
            lifetime.triggers_fired,
            before.triggers_fired + last.triggers_fired,
            "{label}"
        );
        assert_eq!(
            lifetime.nulls_created,
            before.nulls_created + last.nulls_created,
            "{label}"
        );
        assert_eq!(
            lifetime.peak_instance_bytes,
            before.peak_instance_bytes.max(last.peak_instance_bytes),
            "{label}: gauges max, not sum"
        );
        assert!(lifetime.peak_instance_bytes > 0, "{label}");

        // Telemetry spans the whole session: per-rule considered sums
        // to the *lifetime* aggregate, not the last slice's.
        let snap = session.telemetry().expect("telemetry enabled");
        assert_eq!(
            snap.rules.iter().map(|r| r.considered).sum::<usize>(),
            lifetime.triggers_considered,
            "{label}: per-rule attribution partitions the lifetime total"
        );
        assert_eq!(
            snap.rules.iter().map(|r| r.fired).sum::<usize>(),
            lifetime.triggers_fired,
            "{label}"
        );
        assert_eq!(
            snap.rules.iter().map(|r| r.nulls).sum::<usize>(),
            lifetime.nulls_created,
            "{label}"
        );
    }
}
