//! Property-style tests on the core invariants, driven by the seeded
//! deterministic generator (`nuchase_gen::random_program`).
//!
//! These were originally written against `proptest`; the offline build
//! environment has no access to it, and the structured generator already
//! owns the randomness, so each property is exercised as a deterministic
//! sweep over seeds × classes instead. Coverage is equivalent (proptest
//! was only sampling seeds from the same space); shrinking is replaced by
//! the seed being printed in every assertion message.

use nuchase_engine::{
    chase, semi_oblivious_chase, ChaseBudget, ChaseConfig, ChaseResult, ChaseVariant,
};
use nuchase_gen::{random_program, RandomConfig};
use nuchase_model::{Atom, Instance, TgdClass};

const CLASSES: [TgdClass; 3] = [TgdClass::SimpleLinear, TgdClass::Linear, TgdClass::Guarded];

/// Thread counts the parallel determinism sweep pins: 1 (the parallel
/// executor minus the pool), 2, and a non-power-of-two, plus whatever
/// `NUCHASE_THREADS` asks for (the CI matrix routes 1 and 4 through it).
fn differential_thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 7];
    if let Some(n) = std::env::var("NUCHASE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n >= 1 && !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

fn assert_byte_identical(a: &ChaseResult, b: &ChaseResult, label: &str) {
    assert_eq!(a.outcome, b.outcome, "{label}: outcome");
    assert!(
        a.instance.indexed_eq(&b.instance),
        "{label}: atoms differ (or are ordered differently)"
    );
    assert_eq!(a.stats.rounds, b.stats.rounds, "{label}: rounds");
    assert_eq!(
        a.stats.triggers_considered, b.stats.triggers_considered,
        "{label}: triggers considered"
    );
    assert_eq!(
        a.stats.triggers_fired, b.stats.triggers_fired,
        "{label}: triggers fired"
    );
    assert_eq!(a.nulls.len(), b.nulls.len(), "{label}: null count");
    for i in 0..a.nulls.len() {
        let id = nuchase_model::NullId(i as u32);
        assert_eq!(a.nulls.depth(id), b.nulls.depth(id), "{label}: null depth");
        assert_eq!(a.nulls.key(id), b.nulls.key(id), "{label}: null name");
    }
    assert_eq!(
        a.atom_depth_histogram(),
        b.atom_depth_histogram(),
        "{label}: depth histogram"
    );
    let (pa, pb) = (
        a.provenance.as_ref().expect("provenance recorded"),
        b.provenance.as_ref().expect("provenance recorded"),
    );
    assert_eq!(pa.len(), pb.len(), "{label}: provenance length");
    for idx in 0..pa.len() as u32 {
        assert_eq!(
            pa.derivation(idx),
            pb.derivation(idx),
            "{label}: provenance of atom {idx}"
        );
    }
}

/// The parallel executor is **byte-identical** to the sequential engine —
/// same atoms at the same indexes, same null names and depths, same
/// provenance, same round/trigger counts — at thread counts 1, 2, and 7,
/// across the random-instance sweep, for every chase variant (including
/// the restricted chase, whose activeness re-check runs under the
/// enumerate/apply phase split).
#[test]
fn parallel_chase_matches_sequential_byte_for_byte() {
    let counts = differential_thread_counts();
    let variants = [
        ChaseVariant::SemiOblivious,
        ChaseVariant::Oblivious,
        ChaseVariant::Restricted,
    ];
    for class in CLASSES {
        for seed in 0..8u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            for variant in variants {
                let cfg = ChaseConfig {
                    variant,
                    budget: ChaseBudget::atoms(5_000),
                    record_provenance: true,
                    ..Default::default()
                };
                let sequential = chase(&p.database, &p.tgds, &cfg);
                for &threads in &counts {
                    let parallel = chase(&p.database, &p.tgds, &ChaseConfig { threads, ..cfg });
                    assert_byte_identical(
                        &sequential,
                        &parallel,
                        &format!("{class:?} seed {seed} {variant:?} threads {threads}"),
                    );
                }
            }
        }
    }
}

/// The fused micro-round apply path and the staged pipeline are
/// byte-identical — same atoms at the same indexes, same null names and
/// depths, same provenance, forest, and counters — forced on/off across
/// every chase variant and class, at thread counts 0 (sequential engine),
/// 1 (single-worker executor), and 2 (pool executor, whose inline rounds
/// ride the fused path too). `Auto` must equal both.
#[test]
fn fused_and_pipeline_apply_paths_are_byte_identical() {
    use nuchase_engine::ApplyPath;
    let variants = [
        ChaseVariant::SemiOblivious,
        ChaseVariant::Oblivious,
        ChaseVariant::Restricted,
    ];
    for class in CLASSES {
        for seed in 0..5u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            for variant in variants {
                for threads in [0usize, 1, 2] {
                    let cfg = ChaseConfig {
                        variant,
                        threads,
                        budget: ChaseBudget::atoms(4_000),
                        record_provenance: true,
                        build_forest: true,
                        apply_path: ApplyPath::Pipeline,
                        ..Default::default()
                    };
                    let label = format!("{class:?} seed {seed} {variant:?} threads {threads}");
                    let pipeline = chase(&p.database, &p.tgds, &cfg);
                    let fused = chase(
                        &p.database,
                        &p.tgds,
                        &ChaseConfig {
                            apply_path: ApplyPath::Fused,
                            ..cfg
                        },
                    );
                    assert_byte_identical(&pipeline, &fused, &format!("{label} fused"));
                    let auto = chase(
                        &p.database,
                        &p.tgds,
                        &ChaseConfig {
                            apply_path: ApplyPath::Auto,
                            ..cfg
                        },
                    );
                    assert_byte_identical(&pipeline, &auto, &format!("{label} auto"));
                    // The guarded chase forest too (assert_byte_identical
                    // covers provenance but not parents).
                    let (fa, fb) = (
                        pipeline.forest.as_ref().expect("forest recorded"),
                        fused.forest.as_ref().expect("forest recorded"),
                    );
                    assert_eq!(fa.len(), fb.len(), "{label}: forest length");
                    for i in 0..fa.len() as u32 {
                        assert_eq!(fa.parent(i), fb.parent(i), "{label}: parent of {i}");
                    }
                }
            }
        }
    }
}

/// Telemetry observes and never steers: runs at `Counters` and `Full`
/// are **byte-identical** to an untelemetered (`Off`) run — same atoms
/// at the same indexes, same null names and depths, same provenance,
/// same counters — across classes, thread counts 0 (sequential engine),
/// 1 (single-worker executor), and 2 (pool executor), and both forced
/// apply paths. The enabled runs additionally uphold the attribution
/// invariant: per-rule trigger/fired/null counts partition the
/// aggregate stats exactly.
#[test]
fn telemetry_levels_are_byte_identical() {
    use nuchase_engine::{ApplyPath, Engine, PreparedProgram, TelemetryLevel};
    for class in CLASSES {
        for seed in 0..5u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let program = PreparedProgram::compile(p.tgds.clone());
            for threads in [0usize, 1, 2] {
                for path in [ApplyPath::Pipeline, ApplyPath::Fused] {
                    let cfg = ChaseConfig {
                        threads,
                        apply_path: path,
                        budget: ChaseBudget::atoms(4_000),
                        record_provenance: true,
                        ..Default::default()
                    };
                    let label = format!("{class:?} seed {seed} threads {threads} {path:?}");
                    let off = chase(&p.database, &p.tgds, &cfg);
                    for level in [TelemetryLevel::Counters, TelemetryLevel::Full] {
                        let engine = Engine::from_config(&ChaseConfig {
                            telemetry: level,
                            ..cfg
                        });
                        let traced = engine.chase(&program, &p.database);
                        assert_byte_identical(&off, &traced, &format!("{label} {}", level.name()));
                        let snap = traced.telemetry.as_ref().expect("telemetry enabled");
                        assert_eq!(
                            snap.rules.iter().map(|r| r.considered).sum::<usize>(),
                            traced.stats.triggers_considered,
                            "{label} {}: considered partition",
                            level.name()
                        );
                        assert_eq!(
                            snap.rules.iter().map(|r| r.fired).sum::<usize>(),
                            traced.stats.triggers_fired,
                            "{label} {}: fired partition",
                            level.name()
                        );
                        assert_eq!(
                            snap.rules.iter().map(|r| r.nulls).sum::<usize>(),
                            traced.stats.nulls_created,
                            "{label} {}: nulls partition",
                            level.name()
                        );
                    }
                }
            }
        }
    }
}

/// Telemetry exports round-trip on the four example workloads
/// (quickstart's ontology, the data-exchange mapping, the OBDA
/// scenario, and the termination advisor's diverging chain): the JSONL
/// trace is one balanced JSON object per line with the attribution
/// invariant intact, and the chrome://tracing dump is one balanced
/// array of complete `"X"` spans.
#[test]
fn telemetry_exports_round_trip_on_example_workloads() {
    use nuchase_engine::{ChaseBudget, Engine, PreparedProgram, TelemetryLevel};
    use nuchase_model::SymbolTable;

    // (name, database, tgds) for each example's workload.
    let mut workloads: Vec<(&str, Instance, nuchase_model::TgdSet)> = Vec::new();
    let quickstart = nuchase_model::parse_program(
        "person(alice).\nparent(alice, bob).\n\
         parent(X, Y) -> person(Y).\nperson(X) -> hasparent(X, Y).\n\
         hasparent(X, Y) -> person(Y).",
    )
    .unwrap();
    workloads.push(("quickstart", quickstart.database, quickstart.tgds));
    let mut symbols = SymbolTable::new();
    let mapping = nuchase_gen::scenarios::exchange_mapping(&mut symbols);
    let source = nuchase_gen::scenarios::exchange_source(&mut symbols, 64);
    workloads.push(("data_exchange", source, mapping));
    let obda = nuchase_gen::scenarios::obda_scenario(32);
    workloads.push(("ontology_reasoning", obda.database, obda.tgds));
    let advisor =
        nuchase_model::parse_program("r(a, b).\nr(X, Y) -> r(Y, Z).\nr(X, Y) -> p(X, Y).").unwrap();
    workloads.push(("termination_advisor", advisor.database, advisor.tgds));

    for (name, db, tgds) in workloads {
        let program = PreparedProgram::compile(tgds);
        let engine = Engine::builder()
            .budget(ChaseBudget::atoms(2_000))
            .telemetry(TelemetryLevel::Full)
            .build();
        let result = engine.chase(&program, &db);
        let snap = result.telemetry.as_ref().expect("telemetry enabled");
        assert_eq!(
            snap.rules.iter().map(|r| r.considered).sum::<usize>(),
            result.stats.triggers_considered,
            "{name}: attribution partition"
        );
        let mut jsonl = Vec::new();
        snap.write_jsonl(&mut jsonl).unwrap();
        let text = String::from_utf8(jsonl).unwrap();
        assert_eq!(
            text.lines().count(),
            2 + snap.rules.len() + snap.rounds.len(),
            "{name}: meta + memory + rules + rounds"
        );
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "{name}: {line}"
            );
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "{name}: {line}"
            );
            assert_eq!(line.matches('"').count() % 2, 0, "{name}: {line}");
        }
        assert!(text.contains("\"type\":\"meta\""), "{name}");
        assert!(text.contains("\"type\":\"memory\""), "{name}");
        let mut chrome = Vec::new();
        snap.write_chrome_trace(&mut chrome).unwrap();
        let ctext = String::from_utf8(chrome).unwrap();
        let trimmed = ctext.trim();
        assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "{name}");
        assert_eq!(
            ctext.matches('{').count(),
            ctext.matches('}').count(),
            "{name}"
        );
        assert!(ctext.contains("\"ph\":\"X\""), "{name}: at least one span");
    }
}

/// The columnar batch enumeration path and the per-trigger backtracking
/// search are byte-identical — same atoms at the same indexes, same null
/// names and depths, same provenance, forest, and counters (including
/// `triggers_considered`) — forced on/off across every chase variant and
/// class, at thread counts 0 (sequential engine), 1 (single-worker task
/// executor), and 2 (pool executor, batch inside each sharded task).
/// `Auto` must equal both. Combined with the CI env sweep
/// (`NUCHASE_FORCE_BATCH_ENUM=0/1` over this whole file), this pins the
/// batch path at threads 0/1/2/7 in both positions of every other
/// differential.
#[test]
fn batch_and_per_trigger_enumeration_are_byte_identical() {
    use nuchase_engine::BatchEnum;
    let variants = [
        ChaseVariant::SemiOblivious,
        ChaseVariant::Oblivious,
        ChaseVariant::Restricted,
    ];
    for class in CLASSES {
        for seed in 0..5u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            for variant in variants {
                for threads in [0usize, 1, 2] {
                    let cfg = ChaseConfig {
                        variant,
                        threads,
                        budget: ChaseBudget::atoms(4_000),
                        record_provenance: true,
                        build_forest: true,
                        // Explicit Off: the reference leg stays on the
                        // per-trigger path even under the CI env sweep's
                        // NUCHASE_FORCE_BATCH_ENUM=1 (config beats env).
                        batch_enum: BatchEnum::Off,
                        // Batch every non-fused round, however small —
                        // tiny rounds are where ordering bugs would hide.
                        batch_delta_min: 0,
                        ..Default::default()
                    };
                    let label = format!("{class:?} seed {seed} {variant:?} threads {threads}");
                    let per_trigger = chase(&p.database, &p.tgds, &cfg);
                    let batch = chase(
                        &p.database,
                        &p.tgds,
                        &ChaseConfig {
                            batch_enum: BatchEnum::On,
                            ..cfg
                        },
                    );
                    assert_byte_identical(&per_trigger, &batch, &format!("{label} batch"));
                    let auto = chase(
                        &p.database,
                        &p.tgds,
                        &ChaseConfig {
                            batch_enum: BatchEnum::Auto,
                            ..cfg
                        },
                    );
                    assert_byte_identical(&per_trigger, &auto, &format!("{label} auto"));
                    let (fa, fb) = (
                        per_trigger.forest.as_ref().expect("forest recorded"),
                        batch.forest.as_ref().expect("forest recorded"),
                    );
                    assert_eq!(fa.len(), fb.len(), "{label}: forest length");
                    for i in 0..fa.len() as u32 {
                        assert_eq!(fa.parent(i), fb.parent(i), "{label}: parent of {i}");
                    }
                }
            }
        }
    }
}

/// chase(D, Σ) is a *set*: permuting the database insertion order changes
/// nothing about the result (atom count, null count, depth).
#[test]
fn chase_is_order_independent() {
    for class in CLASSES {
        for seed in 0..24u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let r1 = semi_oblivious_chase(&p.database, &p.tgds, 20_000);
            let reversed: Instance = {
                let mut atoms: Vec<Atom> = p.database.iter().map(|a| a.to_atom()).collect();
                atoms.reverse();
                atoms.into_iter().collect()
            };
            let r2 = semi_oblivious_chase(&reversed, &p.tgds, 20_000);
            assert_eq!(r1.terminated(), r2.terminated(), "{class:?} seed {seed}");
            assert_eq!(
                r1.instance.len(),
                r2.instance.len(),
                "{class:?} seed {seed}"
            );
            assert_eq!(
                r1.stats.nulls_created, r2.stats.nulls_created,
                "{class:?} seed {seed}"
            );
            assert_eq!(r1.max_depth(), r2.max_depth(), "{class:?} seed {seed}");
        }
    }
}

/// Monotonicity: D ⊆ D' implies chase(D, Σ) ⊆ chase(D', Σ) for the
/// semi-oblivious chase (null names depend only on (σ, h|fr)).
#[test]
fn chase_is_monotone_in_the_database() {
    for seed in 0..48u64 {
        let p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear,
            seed,
            facts: 10,
            ..Default::default()
        });
        let r_full = semi_oblivious_chase(&p.database, &p.tgds, 20_000);
        if !r_full.terminated() {
            continue;
        }
        let smaller: Instance = p
            .database
            .iter()
            .take(p.database.len().saturating_sub(1))
            .map(|a| a.to_atom())
            .collect();
        let r_small = semi_oblivious_chase(&smaller, &p.tgds, 20_000);
        if !r_small.terminated() {
            continue;
        }
        // Null ids may differ between runs, so compare the constant-only
        // projection by membership plus the total counts.
        for atom in r_small.instance.iter().filter(|a| a.is_fact()) {
            assert!(r_full.instance.contains_ref(atom), "seed {seed}");
        }
        assert!(
            r_full.instance.len() >= r_small.instance.len(),
            "seed {seed}"
        );
    }
}

/// Whenever the syntactic decider says "finite", the chase terminates
/// within the class bound |D|·f_C(Σ) — and in practice far below the test
/// budget on these small programs.
#[test]
fn finite_verdicts_are_truthful() {
    for class in CLASSES {
        for seed in 0..32u64 {
            let mut p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let verdict = match class {
                TgdClass::SimpleLinear => nuchase::decide_sl(&p.database, &p.tgds),
                TgdClass::Linear => nuchase::decide_l(&p.database, &p.tgds, &mut p.symbols),
                TgdClass::Guarded => nuchase::decide_g(&p.database, &p.tgds, &mut p.symbols),
                TgdClass::General => unreachable!(),
            };
            let Ok(finite) = verdict else { continue };
            if finite {
                let r = semi_oblivious_chase(&p.database, &p.tgds, 60_000);
                assert!(
                    r.terminated(),
                    "{class:?} seed {seed}: decider said finite; chase must terminate"
                );
                let bound = nuchase::chase_size_bound(p.database.len(), &p.tgds, class);
                assert!(
                    bound.admits(r.instance.len() as u128),
                    "{class:?} seed {seed}"
                );
            }
        }
    }
}

/// Depth bounds: on terminating runs, maxdepth(D,Σ) ≤ d_C(Σ).
#[test]
fn depth_respects_class_bound() {
    for class in CLASSES {
        for seed in 0..24u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let r = semi_oblivious_chase(&p.database, &p.tgds, 30_000);
            if !r.terminated() {
                continue;
            }
            let bound = nuchase::depth_bound(&p.tgds, class);
            assert!(
                bound.admits(r.max_depth() as u128),
                "{class:?} seed {seed}: depth {} exceeds d_C = {:?}",
                r.max_depth(),
                bound
            );
        }
    }
}

/// The chase result is a model of Σ whenever it terminates.
#[test]
fn terminated_chase_is_a_model() {
    for class in CLASSES {
        for seed in 0..24u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let r = semi_oblivious_chase(&p.database, &p.tgds, 30_000);
            if !r.terminated() {
                continue;
            }
            assert!(r.is_model_of(&p.tgds), "{class:?} seed {seed}");
        }
    }
}

/// The restricted chase never produces more atoms than the semi-oblivious
/// one (it skips satisfied heads).
#[test]
fn restricted_is_leaner() {
    for seed in 0..32u64 {
        let p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear,
            seed,
            ..Default::default()
        });
        let so = semi_oblivious_chase(&p.database, &p.tgds, 20_000);
        if !so.terminated() {
            continue;
        }
        let re = chase(
            &p.database,
            &p.tgds,
            &ChaseConfig {
                variant: ChaseVariant::Restricted,
                ..Default::default()
            },
        );
        if !re.terminated() {
            continue;
        }
        assert!(re.instance.len() <= so.instance.len(), "seed {seed}");
    }
}

/// Parser round-trip: pretty-printing a random program and re-parsing it
/// yields structurally identical TGDs and an equal database.
#[test]
fn parser_pretty_printer_round_trip() {
    use nuchase_model::DisplayWith;
    for class in CLASSES {
        for seed in 0..32u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let text = format!(
                "{}{}",
                p.database.display(&p.symbols),
                p.tgds.display(&p.symbols)
            );
            let q = nuchase_model::parse_program(&text).unwrap();
            assert_eq!(p.database.len(), q.database.len(), "{class:?} seed {seed}");
            assert_eq!(p.tgds.len(), q.tgds.len(), "{class:?} seed {seed}");
            for ((_, a), (_, b)) in p.tgds.iter().zip(q.tgds.iter()) {
                assert_eq!(a.body().len(), b.body().len());
                assert_eq!(a.head().len(), b.head().len());
                assert_eq!(a.frontier().len(), b.frontier().len());
                assert_eq!(a.existentials().len(), b.existentials().len());
            }
        }
    }
}
