//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;

use nuchase_engine::{chase, semi_oblivious_chase, ChaseConfig, ChaseVariant};
use nuchase_gen::{random_program, RandomConfig};
use nuchase_model::{Atom, Instance, TgdClass};

/// Strategy: a seed + class, expanded through the deterministic generator
/// (keeps shrinking meaningful while reusing the structured generator).
fn class_strategy() -> impl Strategy<Value = TgdClass> {
    prop_oneof![
        Just(TgdClass::SimpleLinear),
        Just(TgdClass::Linear),
        Just(TgdClass::Guarded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// chase(D, Σ) is a *set*: permuting the database insertion order
    /// changes nothing about the result (atom count, null count, depth).
    #[test]
    fn chase_is_order_independent(seed in 0u64..500, class in class_strategy()) {
        let p = random_program(&RandomConfig { class, seed, ..Default::default() });
        let r1 = semi_oblivious_chase(&p.database, &p.tgds, 20_000);
        // Reverse the database order.
        let reversed: Instance = {
            let mut atoms: Vec<Atom> = p.database.iter().cloned().collect();
            atoms.reverse();
            atoms.into_iter().collect()
        };
        let r2 = semi_oblivious_chase(&reversed, &p.tgds, 20_000);
        prop_assert_eq!(r1.terminated(), r2.terminated());
        prop_assert_eq!(r1.instance.len(), r2.instance.len());
        prop_assert_eq!(r1.stats.nulls_created, r2.stats.nulls_created);
        prop_assert_eq!(r1.max_depth(), r2.max_depth());
    }

    /// Monotonicity: D ⊆ D' implies chase(D, Σ) ⊆ chase(D', Σ) for the
    /// semi-oblivious chase (null names depend only on (σ, h|fr)).
    #[test]
    fn chase_is_monotone_in_the_database(seed in 0u64..300) {
        let p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear, seed, facts: 10, ..Default::default()
        });
        let r_full = semi_oblivious_chase(&p.database, &p.tgds, 20_000);
        prop_assume!(r_full.terminated());
        // Drop the last fact.
        let smaller: Instance = p.database.iter().take(p.database.len().saturating_sub(1))
            .cloned().collect();
        let r_small = semi_oblivious_chase(&smaller, &p.tgds, 20_000);
        prop_assume!(r_small.terminated());
        // Compare null-free projections (null ids may differ between runs,
        // but the engine interns by (rule, var, frontier), and frontier
        // terms of the smaller run embed into the bigger one — null ids
        // are allocated in discovery order, so compare by count via
        // membership of constant-only atoms plus total counts.
        for atom in r_small.instance.iter().filter(|a| a.is_fact()) {
            prop_assert!(r_full.instance.contains(atom));
        }
        prop_assert!(r_full.instance.len() >= r_small.instance.len());
    }

    /// Whenever the syntactic decider says "finite", the chase terminates
    /// within the class bound |D|·f_C(Σ) — and in practice far below the
    /// test budget on these small programs.
    #[test]
    fn finite_verdicts_are_truthful(seed in 0u64..400, class in class_strategy()) {
        let mut p = random_program(&RandomConfig { class, seed, ..Default::default() });
        let verdict = match class {
            TgdClass::SimpleLinear => nuchase::decide_sl(&p.database, &p.tgds),
            TgdClass::Linear => nuchase::decide_l(&p.database, &p.tgds, &mut p.symbols),
            TgdClass::Guarded => nuchase::decide_g(&p.database, &p.tgds, &mut p.symbols),
            TgdClass::General => unreachable!(),
        };
        let Ok(finite) = verdict else { return Ok(()); };
        if finite {
            let r = semi_oblivious_chase(&p.database, &p.tgds, 60_000);
            prop_assert!(r.terminated(), "decider said finite; chase must terminate");
            let bound = nuchase::chase_size_bound(p.database.len(), &p.tgds, class);
            prop_assert!(bound.admits(r.instance.len() as u128));
        }
    }

    /// Depth bounds: on terminating runs, maxdepth(D,Σ) ≤ d_C(Σ).
    #[test]
    fn depth_respects_class_bound(seed in 0u64..300, class in class_strategy()) {
        let p = random_program(&RandomConfig { class, seed, ..Default::default() });
        let r = semi_oblivious_chase(&p.database, &p.tgds, 30_000);
        prop_assume!(r.terminated());
        let bound = nuchase::depth_bound(&p.tgds, class);
        prop_assert!(bound.admits(r.max_depth() as u128),
            "depth {} exceeds d_C = {:?}", r.max_depth(), bound);
    }

    /// The chase result is a model of Σ whenever it terminates.
    #[test]
    fn terminated_chase_is_a_model(seed in 0u64..300, class in class_strategy()) {
        let p = random_program(&RandomConfig { class, seed, ..Default::default() });
        let r = semi_oblivious_chase(&p.database, &p.tgds, 30_000);
        prop_assume!(r.terminated());
        prop_assert!(r.is_model_of(&p.tgds));
    }

    /// The restricted chase never produces more atoms than the
    /// semi-oblivious one (it skips satisfied heads).
    #[test]
    fn restricted_is_leaner(seed in 0u64..200) {
        let p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear, seed, ..Default::default()
        });
        let so = semi_oblivious_chase(&p.database, &p.tgds, 20_000);
        prop_assume!(so.terminated());
        let re = chase(&p.database, &p.tgds, &ChaseConfig {
            variant: ChaseVariant::Restricted,
            ..Default::default()
        });
        prop_assume!(re.terminated());
        prop_assert!(re.instance.len() <= so.instance.len());
    }

    /// Parser round-trip: pretty-printing a random program and re-parsing
    /// it yields structurally identical TGDs and an equal database.
    #[test]
    fn parser_pretty_printer_round_trip(seed in 0u64..400, class in class_strategy()) {
        use nuchase_model::DisplayWith;
        let p = random_program(&RandomConfig { class, seed, ..Default::default() });
        let text = format!("{}{}", p.database.display(&p.symbols), p.tgds.display(&p.symbols));
        let q = nuchase_model::parse_program(&text).unwrap();
        prop_assert_eq!(p.database.len(), q.database.len());
        prop_assert_eq!(p.tgds.len(), q.tgds.len());
        for ((_, a), (_, b)) in p.tgds.iter().zip(q.tgds.iter()) {
            prop_assert_eq!(a.body().len(), b.body().len());
            prop_assert_eq!(a.head().len(), b.head().len());
            prop_assert_eq!(a.frontier().len(), b.frontier().len());
            prop_assert_eq!(a.existentials().len(), b.existentials().len());
        }
    }
}
