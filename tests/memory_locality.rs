//! Byte-identity sweeps for the memory-locality tier: the cache-line
//! bucketized table layout, the partitioned batched-probe passes, and
//! the chunked (optionally file-backed) instance arenas must all be
//! unobservable through the engine API — same atoms at the same
//! indexes, same null names and depths, same counters — across table
//! layouts forced on/off, thread counts 0/1/2, and both apply paths.
//!
//! The tests share process-global knobs (the table-layout default and
//! the arena spill directory), so they serialize on one lock; the arena
//! chunk length is pinned tiny for the whole binary so every chase in
//! here crosses chunk seams constantly.

use std::sync::Mutex;

use nuchase_engine::{chase, ApplyPath, ChaseBudget, ChaseConfig, ChaseResult, ChaseVariant};
use nuchase_gen::{random_program, RandomConfig};
use nuchase_model::hash::{set_table_layout, TableLayout};
use nuchase_model::TgdClass;

/// Serializes the tests around the process-global layout/spill knobs.
static KNOBS: Mutex<()> = Mutex::new(());

/// Pins the arena chunk length to 64 elements for this test binary
/// (cached on first arena use), so a few thousand atoms span dozens of
/// chunks and every seam behaviour runs under a real chase.
fn pin_tiny_chunks() {
    std::env::set_var("NUCHASE_CHUNK_LEN", "64");
}

fn assert_byte_identical(a: &ChaseResult, b: &ChaseResult, label: &str) {
    assert_eq!(a.outcome, b.outcome, "{label}: outcome");
    assert!(
        a.instance.indexed_eq(&b.instance),
        "{label}: atoms differ (or are ordered differently)"
    );
    assert_eq!(a.stats.rounds, b.stats.rounds, "{label}: rounds");
    assert_eq!(
        a.stats.triggers_considered, b.stats.triggers_considered,
        "{label}: triggers considered"
    );
    assert_eq!(
        a.stats.triggers_fired, b.stats.triggers_fired,
        "{label}: triggers fired"
    );
    assert_eq!(a.nulls.len(), b.nulls.len(), "{label}: null count");
    for i in 0..a.nulls.len() {
        let id = nuchase_model::NullId(i as u32);
        assert_eq!(a.nulls.depth(id), b.nulls.depth(id), "{label}: null depth");
        assert_eq!(a.nulls.key(id), b.nulls.key(id), "{label}: null name");
    }
}

/// The tentpole sweep: table layout (linear vs cache-line bucketized)
/// × threads 0/1/2 × both apply paths, against one linear/sequential
/// reference per program — all twelve combinations must be
/// byte-identical. This is the in-process form of the CI
/// `NUCHASE_FORCE_BUCKET_LAYOUT=0/1` differential legs.
#[test]
fn bucketized_layout_is_byte_identical_across_threads_and_paths() {
    let _guard = KNOBS.lock().unwrap();
    pin_tiny_chunks();
    let classes = [TgdClass::SimpleLinear, TgdClass::Linear, TgdClass::Guarded];
    let variants = [
        ChaseVariant::SemiOblivious,
        ChaseVariant::Oblivious,
        ChaseVariant::Restricted,
    ];
    // The program is regenerated (same seed, so identical content) after
    // every layout flip: the engine chases a clone of the database, and a
    // table's layout is fixed at creation, so a database built once would
    // pin the instance-dedup table to one layout across the whole sweep.
    let gen = |class, seed| {
        random_program(&RandomConfig {
            class,
            seed,
            ..Default::default()
        })
    };
    for class in classes {
        for seed in 0..3u64 {
            for variant in variants {
                let base_cfg = ChaseConfig {
                    variant,
                    budget: ChaseBudget::atoms(3_000),
                    ..Default::default()
                };
                set_table_layout(TableLayout::Linear);
                let p = gen(class, seed);
                let reference = chase(&p.database, &p.tgds, &base_cfg);
                for layout in [TableLayout::Linear, TableLayout::Bucketized] {
                    set_table_layout(layout);
                    let p = gen(class, seed);
                    for threads in [0usize, 1, 2] {
                        for path in [ApplyPath::Fused, ApplyPath::Pipeline] {
                            let run = chase(
                                &p.database,
                                &p.tgds,
                                &ChaseConfig {
                                    threads,
                                    apply_path: path,
                                    ..base_cfg
                                },
                            );
                            assert_byte_identical(
                                &reference,
                                &run,
                                &format!(
                                    "{class:?} seed {seed} {variant:?} \
                                     {layout:?} threads {threads} {path:?}"
                                ),
                            );
                        }
                    }
                }
                set_table_layout(TableLayout::Bucketized);
            }
        }
    }
}

/// File-backed arena chunks (the out-of-core spill tier) are invisible
/// to the chase: the same program chased with `NUCHASE_INSTANCE_SPILL_DIR`
/// routed to a temp directory is byte-identical to the heap-backed run,
/// while the instance actually holds mmap-backed bytes (asserted), and
/// the tiny chunk length means its term pool crosses many chunk seams.
#[test]
fn file_backed_chunks_are_byte_identical_to_heap_chunks() {
    let _guard = KNOBS.lock().unwrap();
    pin_tiny_chunks();
    let p = nuchase_model::parse_program(
        "r(a, b).\n\
         r(X, Y) -> r(Y, Z).\n\
         r(X, Y) -> p(X, Y, X, Y).",
    )
    .unwrap();
    let cfg = ChaseConfig {
        budget: ChaseBudget::atoms(8_000),
        ..Default::default()
    };
    std::env::remove_var("NUCHASE_INSTANCE_SPILL_DIR");
    let heap = chase(&p.database, &p.tgds, &cfg);
    assert_eq!(heap.instance.file_bytes(), 0, "heap run must not spill");

    let dir = std::env::temp_dir().join("nuchase_memory_locality_spill");
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("NUCHASE_INSTANCE_SPILL_DIR", &dir);
    let spilled = chase(&p.database, &p.tgds, &cfg);
    std::env::remove_var("NUCHASE_INSTANCE_SPILL_DIR");
    let _ = std::fs::remove_dir_all(&dir);

    assert_byte_identical(&heap, &spilled, "spill-dir run");
    assert!(
        spilled.instance.file_bytes() > 0,
        "spill run kept every chunk on the heap"
    );
}
