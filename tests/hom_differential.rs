//! Differential tests for the compiled hom search: the `MatchPlan`
//! engine (indexes, pivot permutations, selectivity-based probe choice,
//! shared scratch) must enumerate exactly the same hom sets as the naive
//! reference enumerator (`nuchase_model::hom::naive` — full scans, no
//! plans), on randomly generated programs and chase-produced instances
//! (which contain nulls, repeated terms, and skewed predicates).

use std::ops::ControlFlow;

use nuchase_engine::{baseline_semi_oblivious_chase, semi_oblivious_chase};
use nuchase_gen::{random_program, RandomConfig};
use nuchase_model::hom::naive;
use nuchase_model::plan::Scratch;
use nuchase_model::{AtomIdx, Instance, Term, TgdClass};

type Hom = Vec<Option<Term>>;

fn sorted(mut homs: Vec<Hom>) -> Vec<Hom> {
    homs.sort();
    homs
}

/// A test corpus: for each class × seed, the random program plus a
/// partially chased instance of it (so patterns meet nulls, not just
/// database constants).
fn corpus() -> Vec<(nuchase_model::Program, Instance)> {
    let mut out = Vec::new();
    for class in [TgdClass::SimpleLinear, TgdClass::Linear, TgdClass::Guarded] {
        for seed in 0..30u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let inst = semi_oblivious_chase(&p.database, &p.tgds, 400).instance;
            out.push((p, inst));
        }
    }
    out
}

/// Full enumeration: compiled plan ≡ naive reference, per rule body.
#[test]
fn compiled_full_enumeration_matches_naive() {
    let mut scratch = Scratch::new();
    let mut compared = 0usize;
    for (p, inst) in corpus() {
        for (_, tgd) in p.tgds.iter() {
            let mut compiled: Vec<Hom> = Vec::new();
            tgd.body_plan().for_each_hom(&inst, &mut scratch, |b| {
                compiled.push(b.to_vec());
                ControlFlow::Continue(())
            });
            let mut brute: Vec<Hom> = Vec::new();
            naive::for_each_hom_naive(tgd.body(), tgd.var_count(), &inst, |b| {
                brute.push(b.to_vec())
            });
            assert_eq!(
                sorted(compiled),
                sorted(brute),
                "full enumeration diverges on body {:?}",
                tgd.body()
            );
            compared += 1;
        }
    }
    assert!(compared > 200, "corpus too small ({compared} bodies)");
}

/// Delta enumeration at several split points: compiled pivot scheme ≡
/// naive "image touches the delta" filter, and duplicate-free.
#[test]
fn compiled_delta_enumeration_matches_naive() {
    let mut scratch = Scratch::new();
    for (p, inst) in corpus() {
        let n = inst.len() as AtomIdx;
        // Split points: empty delta, late delta, half, full instance.
        for delta_start in [n, n.saturating_sub(1), n / 2, 0] {
            for (_, tgd) in p.tgds.iter() {
                let mut compiled: Vec<Hom> = Vec::new();
                tgd.body_plan()
                    .for_each_hom_delta(&inst, delta_start, &mut scratch, |b| {
                        compiled.push(b.to_vec());
                        ControlFlow::Continue(())
                    });
                let mut brute: Vec<Hom> = Vec::new();
                naive::for_each_hom_delta_naive(
                    tgd.body(),
                    tgd.var_count(),
                    &inst,
                    delta_start,
                    |b| brute.push(b.to_vec()),
                );
                // The pivot scheme must be duplicate-free; since a fully
                // instantiated pattern denotes a unique atom of a
                // deduplicated instance, bindings are unique too.
                let compiled = sorted(compiled);
                assert!(
                    compiled.windows(2).all(|w| w[0] != w[1]),
                    "duplicate delta hom on body {:?}",
                    tgd.body()
                );
                assert_eq!(
                    compiled,
                    sorted(brute),
                    "delta enumeration diverges on body {:?} at split {delta_start}",
                    tgd.body()
                );
            }
        }
    }
}

/// Whole-engine differential: the optimized chase and the preserved seed
/// baseline must produce identical instances and statistics on random
/// programs.
#[test]
fn optimized_chase_matches_seed_baseline() {
    let mut compared = 0usize;
    for class in [TgdClass::SimpleLinear, TgdClass::Linear, TgdClass::Guarded] {
        for seed in 0..25u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let base = baseline_semi_oblivious_chase(&p.database, &p.tgds, 5_000);
            let opt = semi_oblivious_chase(&p.database, &p.tgds, 5_000);
            assert_eq!(base.terminated(), opt.terminated(), "{class:?} seed {seed}");
            if !base.terminated() {
                continue; // budget cuts are order-dependent prefixes
            }
            assert!(
                base.instance.set_eq(&opt.instance),
                "{class:?} seed {seed}: instances diverge"
            );
            assert_eq!(
                base.stats.triggers_fired, opt.stats.triggers_fired,
                "{class:?} seed {seed}"
            );
            assert_eq!(
                base.stats.nulls_created, opt.stats.nulls_created,
                "{class:?} seed {seed}"
            );
            compared += 1;
        }
    }
    assert!(compared > 30, "too few terminating samples ({compared})");
}
