//! Differential tests of the fault-isolation layer (`engine::fault` +
//! `model::fault`), pinning the crash-consistency contract:
//!
//! > Under any injected fault, a chase run either **completes
//! > byte-identically** to a fault-free run (the armed site never
//! > fired), or **fails cleanly** with a typed error and the session
//! > rolled back to the last round boundary — from which disarming the
//! > plan and resuming completes byte-identically.
//!
//! Also pinned here:
//!
//! * **Panic isolation** — a worker panic (injected or `:panic`-flavor
//!   "genuine") fails only its session: the engine's pool survives and
//!   a new session on the same engine is byte-identical to a fresh run.
//! * **Poisoning** — a genuine panic poisons its session: further runs
//!   refuse with [`ChaseError::Poisoned`], but `stats()` stays usable.
//! * **Graceful degradation** — spill-file I/O failure falls back to
//!   heap chunks (byte-identical data, counters incremented), transient
//!   errors retry with backoff, and the heap ceiling is a *resumable*
//!   [`ChaseOutcome::MemoryLimit`] pause, not an error.
//!
//! Fault arming and the `NUCHASE_*` knobs are process-global, so every
//! test serializes on one mutex and restores the globals it touches.

use std::sync::Mutex;

use nuchase_engine::{
    ApplyPath, ChaseBudget, ChaseConfig, ChaseError, ChaseOutcome, ChaseResult, ChaseVariant,
    Engine, FaultPlan, FaultSite, PreparedProgram,
};
use nuchase_model::{parse_program, ChunkedArena, InjectedFault, Program};

/// Serializes every test in this file: the fault plan, its hit
/// counters, and the env knobs are process-global.
static LOCK: Mutex<()> = Mutex::new(());

/// Test-scoped guard: takes the global lock and swaps in a panic hook
/// that silences *injected* unwinds (they are expected by the dozen
/// here and would drown the harness output) while still printing
/// genuine panics — i.e. real test failures.
struct FaultTest {
    _guard: std::sync::MutexGuard<'static, ()>,
}

impl FaultTest {
    fn begin() -> FaultTest {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        nuchase_model::fault::disarm();
        std::panic::set_hook(Box::new(|info| {
            let p = info.payload();
            let injected = p.is::<InjectedFault>()
                || p.downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected panic at fault site"))
                || p.downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected panic at fault site"));
            if !injected {
                eprintln!("{info}");
            }
        }));
        FaultTest { _guard: guard }
    }
}

impl Drop for FaultTest {
    fn drop(&mut self) {
        nuchase_model::fault::disarm();
        let _ = std::panic::take_hook();
    }
}

/// A small terminating workload that exercises every engine stage:
/// multi-rule enumeration, existential nulls, several rounds.
fn workload() -> Program {
    parse_program(
        "e(a, b).\ne(b, c).\ne(c, d).\n\
         e(X, Y), e(Y, Z) -> e(X, Z).\n\
         e(X, Y) -> n(X, W).\n\
         n(X, W) -> m(W).",
    )
    .unwrap()
}

fn config(threads: usize, path: ApplyPath) -> ChaseConfig {
    ChaseConfig {
        variant: ChaseVariant::SemiOblivious,
        threads,
        apply_path: path,
        budget: ChaseBudget::atoms(20_000),
        ..Default::default()
    }
}

/// The contract's "byte-identical" clause, at the strength the fault
/// flows guarantee: same atoms at the same indexes, same null count.
fn assert_same_instance(a: &ChaseResult, b: &ChaseResult, label: &str) {
    assert!(a.instance.indexed_eq(&b.instance), "{label}: instance");
    assert_eq!(a.nulls.len(), b.nulls.len(), "{label}: null count");
}

const APPLY_PATHS: [ApplyPath; 2] = [ApplyPath::Pipeline, ApplyPath::Fused];

/// The tentpole sweep: every site × thread count × apply path × two hit
/// indexes. Each armed run either terminates byte-identically (the site
/// never fired on this path) or fails with exactly the armed site's
/// typed error — and then, disarmed, resumes to the identical fixpoint.
#[test]
fn injected_faults_complete_or_fail_cleanly_and_resume_identically() {
    let _t = FaultTest::begin();
    let p = workload();
    let prepared = PreparedProgram::compile(p.tgds.clone());
    let reference =
        Engine::from_config(&config(0, ApplyPath::Pipeline)).chase(&prepared, &p.database);
    assert!(reference.terminated());

    for site in FaultSite::ALL {
        for nth in [0u64, 3] {
            for threads in [0usize, 1, 2] {
                for path in APPLY_PATHS {
                    let label = format!("{site} nth {nth} threads {threads} {path:?}");
                    let mut cfg = config(threads, path);
                    cfg.fault_plan = FaultPlan::none().fail(site, nth);
                    let engine = Engine::from_config(&cfg);
                    let mut session = engine.session(&prepared, &p.database);
                    match session.run() {
                        ChaseOutcome::Terminated => {
                            // The armed hit was never reached on this
                            // path — the run must be untouched.
                            let result = session.finish();
                            assert_same_instance(&reference, &result, &label);
                        }
                        ChaseOutcome::Failed(ChaseError::Injected { site: s, .. }) => {
                            assert_eq!(s, site, "{label}: wrong site reported");
                            assert!(!session.poisoned(), "{label}: injected must not poison");
                            assert!(
                                session.stats().faults_injected >= 1,
                                "{label}: fault not counted"
                            );
                            // Disarm and resume: the rollback-and-replay
                            // must land on the fault-free fixpoint.
                            session.set_fault_plan(FaultPlan::none());
                            assert_eq!(
                                session.resume(),
                                ChaseOutcome::Terminated,
                                "{label}: resume"
                            );
                            let result = session.finish();
                            assert_same_instance(&reference, &result, &label);
                        }
                        other => panic!("{label}: unexpected outcome {other:?}"),
                    }
                }
            }
        }
    }
}

/// Panic isolation: a worker-task fault on the pooled executor fails
/// only its session. The pool's threads re-park, and both a *new*
/// session on the same engine and the disarmed *resumed* session reach
/// the byte-identical fixpoint.
#[test]
fn worker_fault_leaves_engine_and_pool_usable() {
    let _t = FaultTest::begin();
    let p = workload();
    let prepared = PreparedProgram::compile(p.tgds.clone());
    let mut cfg = config(2, ApplyPath::Pipeline);
    let reference = Engine::from_config(&cfg).chase(&prepared, &p.database);

    cfg.fault_plan = FaultPlan::none().fail(FaultSite::WorkerTask, 0);
    let engine = Engine::from_config(&cfg);
    let mut session = engine.session(&prepared, &p.database);
    let outcome = session.run();
    assert!(
        matches!(
            outcome,
            ChaseOutcome::Failed(ChaseError::Injected {
                site: FaultSite::WorkerTask,
                ..
            })
        ),
        "expected an injected worker fault, got {outcome:?}"
    );

    // A fresh session on the SAME engine (same pool threads): clean run.
    let mut fresh = engine.session(&prepared, &p.database);
    fresh.set_fault_plan(FaultPlan::none());
    assert_eq!(fresh.run(), ChaseOutcome::Terminated, "fresh session");
    assert_same_instance(&reference, &fresh.finish(), "fresh session");

    // And the failed session itself resumes to the same fixpoint.
    session.set_fault_plan(FaultPlan::none());
    assert_eq!(session.resume(), ChaseOutcome::Terminated, "resumed");
    assert_same_instance(&reference, &session.finish(), "resumed");
}

/// The `:panic` flavor simulates a genuine bug: the session poisons
/// (further runs refuse with the typed `Poisoned` error) but keeps its
/// accessors, and the engine + pool serve new sessions unharmed.
#[test]
fn genuine_panic_poisons_only_its_session() {
    let _t = FaultTest::begin();
    let p = workload();
    let prepared = PreparedProgram::compile(p.tgds.clone());
    let mut cfg = config(2, ApplyPath::Pipeline);
    let reference = Engine::from_config(&cfg).chase(&prepared, &p.database);

    cfg.fault_plan = FaultPlan::none().fail_with_panic(FaultSite::WorkerTask, 0);
    let engine = Engine::from_config(&cfg);
    let mut session = engine.session(&prepared, &p.database);
    match session.run() {
        ChaseOutcome::Failed(ChaseError::Panic { message }) => {
            assert!(
                message.contains("injected panic at fault site"),
                "panic message lost: {message}"
            );
        }
        other => panic!("expected a panic failure, got {other:?}"),
    }
    assert!(session.poisoned(), "genuine panic must poison");
    // The poisoned session still reports — and refuses to run again.
    let _ = session.stats();
    assert!(
        matches!(
            session.outcome(),
            Some(ChaseOutcome::Failed(ChaseError::Panic { .. }))
        ),
        "outcome accessor lost the failure"
    );
    session.set_fault_plan(FaultPlan::none());
    assert_eq!(
        session.run(),
        ChaseOutcome::Failed(ChaseError::Poisoned),
        "poisoned session must refuse"
    );

    // The engine outlives the poisoned session.
    let mut fresh = engine.session(&prepared, &p.database);
    fresh.set_fault_plan(FaultPlan::none());
    assert_eq!(fresh.run(), ChaseOutcome::Terminated);
    assert_same_instance(&reference, &fresh.finish(), "post-poison session");
}

/// A workload whose every round carries enough tasks to cross the
/// scheduler's engagement floor (`POOL_TASKS_MIN`) even on a tiny
/// delta: 18 rules share one body predicate, so a `threads ≥ 2` run
/// publishes every round and [`FaultSite::SchedUnit`] sits on the unit
/// claims.
fn wide_rule_workload() -> Program {
    let mut text = String::from("e(a, b).\ne(b, c).\n");
    for i in 0..18 {
        text.push_str(&format!("e(X, Y) -> q{i}(X, Y).\n"));
    }
    parse_program(&text).unwrap()
}

/// [`FaultSite::SchedUnit`] — a claimed shard unit of a published
/// pooled phase — fires deterministically on an engaged run, fails the
/// session cleanly (typed error, rolled back to the round boundary),
/// and the disarmed resume is byte-identical. The engine's scheduler
/// and a fresh session survive.
#[test]
fn sched_unit_fault_fails_cleanly_and_resumes_identically() {
    let _t = FaultTest::begin();
    let p = wide_rule_workload();
    let prepared = PreparedProgram::compile(p.tgds.clone());
    let mut cfg = config(2, ApplyPath::Pipeline);
    let reference = Engine::from_config(&cfg).chase(&prepared, &p.database);
    assert!(reference.terminated());

    cfg.fault_plan = FaultPlan::none().fail(FaultSite::SchedUnit, 0);
    let engine = Engine::from_config(&cfg);
    let mut session = engine.session(&prepared, &p.database);
    let outcome = session.run();
    assert!(
        matches!(
            outcome,
            ChaseOutcome::Failed(ChaseError::Injected {
                site: FaultSite::SchedUnit,
                ..
            })
        ),
        "sched_unit must fire on an engaged pooled round, got {outcome:?}"
    );
    assert!(!session.poisoned(), "injected unit fault must not poison");
    session.set_fault_plan(FaultPlan::none());
    assert_eq!(session.resume(), ChaseOutcome::Terminated, "resume");
    assert_same_instance(&reference, &session.finish(), "sched_unit resume");

    // The scheduler outlives the failed run: a clean session on the
    // same engine (same pool) is untouched.
    let mut fresh = engine.session(&prepared, &p.database);
    fresh.set_fault_plan(FaultPlan::none());
    assert_eq!(fresh.run(), ChaseOutcome::Terminated);
    assert_same_instance(&reference, &fresh.finish(), "post-fault session");
}

/// A genuinely panicking job under concurrent load poisons only itself:
/// `sched_job:N:panic` armed process-globally (the per-slice guard is a
/// no-op for plan-free configs, so the hit counter spans the whole
/// queue) fells exactly one of many submitted jobs — every other job
/// completes byte-identically, and the engine keeps serving.
#[test]
fn panicking_job_under_concurrent_load_fails_only_itself() {
    let _t = FaultTest::begin();
    let p = workload();
    let prepared = PreparedProgram::compile(p.tgds.clone());
    let cfg = config(2, ApplyPath::Pipeline);
    let engine = Engine::from_config(&cfg);
    let reference = engine.chase(&prepared, &p.database);
    assert!(reference.terminated());

    // Arm the third job-slice entry, via the text syntax so the new
    // sites' plan grammar is covered too.
    nuchase_model::fault::arm(&FaultPlan::parse("sched_job:2:panic").unwrap());
    let handles: Vec<_> = (0..6)
        .map(|_| engine.submit(&prepared, &p.database))
        .collect();
    let results: Vec<ChaseResult> = handles.into_iter().map(|h| h.wait()).collect();
    nuchase_model::fault::disarm();

    let mut panics = 0usize;
    for (i, r) in results.iter().enumerate() {
        match &r.outcome {
            ChaseOutcome::Terminated => {
                assert_same_instance(&reference, r, &format!("innocent job {i}"));
            }
            ChaseOutcome::Failed(ChaseError::Panic { message }) => {
                panics += 1;
                assert!(
                    message.contains("injected panic at fault site"),
                    "job {i}: panic message lost: {message}"
                );
            }
            other => panic!("job {i}: unexpected outcome {other:?}"),
        }
    }
    assert_eq!(panics, 1, "exactly one victim job");

    // Disarmed, the same engine's queue is clean again.
    let after = engine.submit(&prepared, &p.database).wait();
    assert_eq!(after.outcome, ChaseOutcome::Terminated, "post-panic job");
    assert_same_instance(&reference, &after, "post-panic job");
}

/// `NUCHASE_FAULT_PLAN` arms runs exactly like a config plan, and a
/// malformed value warns and stays disarmed instead of failing runs.
#[test]
fn env_fault_plan_arms_and_malformed_is_ignored() {
    let _t = FaultTest::begin();
    let p = workload();
    let prepared = PreparedProgram::compile(p.tgds.clone());
    let cfg = config(0, ApplyPath::Pipeline);
    let reference = Engine::from_config(&cfg).chase(&prepared, &p.database);

    std::env::set_var("NUCHASE_FAULT_PLAN", "commit:0");
    let engine = Engine::from_config(&cfg);
    let mut session = engine.session(&prepared, &p.database);
    let outcome = session.run();
    std::env::remove_var("NUCHASE_FAULT_PLAN");
    assert!(
        matches!(
            outcome,
            ChaseOutcome::Failed(ChaseError::Injected {
                site: FaultSite::Commit,
                ..
            })
        ),
        "env plan did not arm: {outcome:?}"
    );
    assert_eq!(session.resume(), ChaseOutcome::Terminated);
    assert_same_instance(&reference, &session.finish(), "env plan resume");

    std::env::set_var("NUCHASE_FAULT_PLAN", "not-a-site:banana");
    let mut session = engine.session(&prepared, &p.database);
    let outcome = session.run();
    std::env::remove_var("NUCHASE_FAULT_PLAN");
    assert_eq!(
        outcome,
        ChaseOutcome::Terminated,
        "malformed plan must disarm"
    );
    assert_same_instance(&reference, &session.finish(), "malformed plan");
}

/// The heap ceiling is a *pause*, not a failure: `MemoryLimit` at a
/// round boundary, then raising the budget and resuming reproduces the
/// uninterrupted run byte for byte — rounds and fired counters included.
#[test]
fn memory_limit_is_a_resumable_round_boundary_pause() {
    let _t = FaultTest::begin();
    let p = workload();
    let prepared = PreparedProgram::compile(p.tgds.clone());
    let cfg = config(0, ApplyPath::Pipeline);
    let reference = Engine::from_config(&cfg).chase(&prepared, &p.database);

    // Via the budget field.
    let mut limited = cfg;
    limited.budget.max_heap_bytes = Some(1);
    let engine = Engine::from_config(&limited);
    let mut session = engine.session(&prepared, &p.database);
    assert_eq!(session.run(), ChaseOutcome::MemoryLimit, "budget ceiling");
    assert!(!session.poisoned());
    session.set_budget(ChaseBudget::atoms(20_000)); // ceiling lifted
    assert_eq!(session.resume(), ChaseOutcome::Terminated);
    let result = session.finish();
    assert_same_instance(&reference, &result, "memory-limit resume");
    assert_eq!(result.stats.rounds, reference.stats.rounds, "rounds");
    assert_eq!(
        result.stats.triggers_fired, reference.stats.triggers_fired,
        "fired"
    );

    // Via the env knob, when the budget leaves the ceiling unset.
    std::env::set_var("NUCHASE_MEMORY_LIMIT_BYTES", "1");
    let engine = Engine::from_config(&cfg);
    let mut session = engine.session(&prepared, &p.database);
    let outcome = session.run();
    std::env::remove_var("NUCHASE_MEMORY_LIMIT_BYTES");
    assert_eq!(outcome, ChaseOutcome::MemoryLimit, "env ceiling");
    assert_eq!(session.resume(), ChaseOutcome::Terminated);
    assert_same_instance(&reference, &session.finish(), "env ceiling resume");
}

/// Builds an arena with tiny chunks and fills two chunks' worth, so
/// chunk allocation (and with it the spill machinery) runs under test
/// control regardless of the process-wide default chunk length.
#[cfg(unix)]
fn fill_two_chunks() -> ChunkedArena<u64> {
    let mut arena = ChunkedArena::with_chunk_len(64, 0u64);
    let values: Vec<u64> = (0..128).collect();
    arena.push_slice(&values[..64]);
    arena.push_slice(&values[64..]);
    for i in 0..128u32 {
        assert_eq!(arena.at(i), i as u64, "arena content");
    }
    arena
}

/// A spill mapping failure degrades to a heap chunk — data intact, the
/// fallback counted — while later chunks still spill normally.
#[cfg(unix)]
#[test]
fn spill_map_fault_falls_back_to_heap() {
    let _t = FaultTest::begin();
    let dir = std::env::temp_dir().join("nuchase_fault_spill_map");
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("NUCHASE_INSTANCE_SPILL_DIR", &dir);
    let before = nuchase_model::fault::counters();
    nuchase_model::fault::arm(&FaultPlan::none().fail(FaultSite::SpillMap, 0));
    let arena = fill_two_chunks();
    nuchase_model::fault::disarm();
    std::env::remove_var("NUCHASE_INSTANCE_SPILL_DIR");
    let after = nuchase_model::fault::counters();
    assert_eq!(
        after.spill_fallbacks - before.spill_fallbacks,
        1,
        "first chunk fell back"
    );
    // The second allocation (hit 1, plan arms hit 0) spilled normally.
    assert!(arena.file_bytes() > 0, "second chunk file-backed");
    drop(arena);
    std::fs::remove_dir_all(&dir).ok();
}

/// Transient (`EINTR`/`EAGAIN`-class) spill errors are retried with
/// backoff and then succeed — no fallback, the retry counted.
#[cfg(unix)]
#[test]
fn transient_spill_errors_retry_then_succeed() {
    let _t = FaultTest::begin();
    let dir = std::env::temp_dir().join("nuchase_fault_spill_transient");
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("NUCHASE_INSTANCE_SPILL_DIR", &dir);
    let before = nuchase_model::fault::counters();
    nuchase_model::fault::arm(&FaultPlan::none().fail(FaultSite::SpillTransient, 0));
    let arena = fill_two_chunks();
    nuchase_model::fault::disarm();
    std::env::remove_var("NUCHASE_INSTANCE_SPILL_DIR");
    let after = nuchase_model::fault::counters();
    assert!(after.retries > before.retries, "retry not counted");
    assert_eq!(
        after.spill_fallbacks, before.spill_fallbacks,
        "a recovered retry is not a fallback"
    );
    assert!(arena.file_bytes() > 0, "retried chunk is file-backed");
    drop(arena);
    std::fs::remove_dir_all(&dir).ok();
}

/// A genuinely unusable spill dir (here: a regular file, so chunk file
/// creation fails with a real, non-injected I/O error) degrades every
/// chunk to the heap — data intact, warn-once, fallbacks counted.
#[cfg(unix)]
#[test]
fn unusable_spill_dir_degrades_to_heap() {
    let _t = FaultTest::begin();
    let file = std::env::temp_dir().join("nuchase_fault_spill_notadir");
    std::fs::write(&file, b"not a directory").unwrap();
    std::env::set_var("NUCHASE_INSTANCE_SPILL_DIR", &file);
    let before = nuchase_model::fault::counters();
    let arena = fill_two_chunks();
    std::env::remove_var("NUCHASE_INSTANCE_SPILL_DIR");
    let after = nuchase_model::fault::counters();
    assert_eq!(arena.file_bytes(), 0, "all chunks on the heap");
    assert!(
        after.spill_fallbacks - before.spill_fallbacks >= 2,
        "every chunk allocation fell back"
    );
    drop(arena);
    std::fs::remove_file(&file).ok();
}

/// An engine run under an unusable spill dir is byte-identical to a
/// heap run — degradation changes *where* chunks live, never the chase.
#[cfg(unix)]
#[test]
fn engine_run_with_unusable_spill_dir_is_byte_identical() {
    let _t = FaultTest::begin();
    let p = workload();
    let prepared = PreparedProgram::compile(p.tgds.clone());
    let cfg = config(0, ApplyPath::Pipeline);
    let reference = Engine::from_config(&cfg).chase(&prepared, &p.database);

    let file = std::env::temp_dir().join("nuchase_fault_spill_engine_notadir");
    std::fs::write(&file, b"not a directory").unwrap();
    std::env::set_var("NUCHASE_INSTANCE_SPILL_DIR", &file);
    let degraded = Engine::from_config(&cfg).chase(&prepared, &p.database);
    std::env::remove_var("NUCHASE_INSTANCE_SPILL_DIR");
    assert!(degraded.terminated());
    assert_same_instance(&reference, &degraded, "degraded spill run");
    std::fs::remove_file(&file).ok();
}

/// Fault accounting surfaces in the run's `ChaseStats` and in
/// `phase_summary()` — but only when something actually happened.
#[test]
fn fault_counters_reach_stats_and_phase_summary() {
    let _t = FaultTest::begin();
    let p = workload();
    let prepared = PreparedProgram::compile(p.tgds.clone());
    let mut cfg = config(0, ApplyPath::Pipeline);

    // A clean run reports nothing fault-related.
    let clean = Engine::from_config(&cfg).chase(&prepared, &p.database);
    assert_eq!(clean.stats.faults_injected, 0);
    assert!(!clean.stats.phase_summary().contains("faults"));

    cfg.fault_plan = FaultPlan::none().fail(FaultSite::Commit, 0);
    let engine = Engine::from_config(&cfg);
    let mut session = engine.session(&prepared, &p.database);
    assert!(matches!(session.run(), ChaseOutcome::Failed(_)));
    assert_eq!(session.stats().faults_injected, 1, "fault attributed");
    assert!(
        session.stats().phase_summary().contains("faults 1"),
        "phase summary: {}",
        session.stats().phase_summary()
    );
}
