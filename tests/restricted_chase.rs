//! Exploratory tests for the paper's stated future work (§9): the
//! *restricted* (standard) chase. The paper's results are for the
//! semi-oblivious variant; these tests pin down the divergences between
//! the two that make the restricted analysis "even more challenging".

use nuchase_engine::{chase, semi_oblivious_chase, ChaseBudget, ChaseConfig, ChaseVariant};
use nuchase_gen::{random_program, RandomConfig};
use nuchase_model::{parse_program, TgdClass};

fn restricted(
    db: &nuchase_model::Instance,
    tgds: &nuchase_model::TgdSet,
    budget: usize,
) -> nuchase_engine::ChaseResult {
    chase(
        db,
        tgds,
        &ChaseConfig {
            variant: ChaseVariant::Restricted,
            budget: ChaseBudget::atoms(budget),
            ..Default::default()
        },
    )
}

/// The classic separation: Σ = {R(x,y) → ∃z R(y,z)} diverges
/// semi-obliviously on {R(a,b)}, and the restricted chase diverges too
/// (no head is ever satisfied early) — but add a "sink" fact R(b,b) and
/// the restricted chase terminates immediately while the semi-oblivious
/// one still diverges.
#[test]
fn restricted_terminates_where_semi_oblivious_diverges() {
    let p = parse_program("r(a, b).\nr(b, b).\nr(X, Y) -> r(Y, Z).").unwrap();
    let so = semi_oblivious_chase(&p.database, &p.tgds, 2_000);
    assert!(!so.terminated(), "semi-oblivious fires per frontier value");
    let re = restricted(&p.database, &p.tgds, 2_000);
    assert!(
        re.terminated(),
        "restricted sees R(b,b) satisfies every head"
    );
    assert_eq!(re.instance.len(), 2);
}

/// Whenever the semi-oblivious chase terminates, the restricted chase
/// terminates as well (its instance embeds; Grahne–Onet). Empirically on
/// the random suite.
#[test]
fn semi_oblivious_termination_implies_restricted_termination() {
    for class in [TgdClass::SimpleLinear, TgdClass::Linear, TgdClass::Guarded] {
        for seed in 0..60u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let so = semi_oblivious_chase(&p.database, &p.tgds, 30_000);
            if !so.terminated() {
                continue;
            }
            let re = restricted(&p.database, &p.tgds, 60_000);
            assert!(re.terminated(), "class {class:?} seed {seed}");
            assert!(
                re.instance.len() <= so.instance.len(),
                "class {class:?} seed {seed}"
            );
        }
    }
}

/// The restricted chase also satisfies Σ on termination.
#[test]
fn restricted_result_is_a_model() {
    for seed in 0..40u64 {
        let p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear,
            seed,
            ..Default::default()
        });
        let re = restricted(&p.database, &p.tgds, 30_000);
        if re.terminated() {
            assert!(re.is_model_of(&p.tgds), "seed {seed}");
        }
    }
}

/// Non-uniform restricted termination is NOT characterized by the
/// semi-oblivious criteria: pin a witness where the SL decider (sound for
/// the semi-oblivious chase) says "infinite" while the restricted chase
/// is finite. This is exactly why the paper calls the restricted analysis
/// more challenging.
#[test]
fn semi_oblivious_deciders_are_conservative_for_restricted() {
    let p = parse_program("r(a, b).\nr(b, b).\nr(X, Y) -> r(Y, Z).").unwrap();
    let verdict = nuchase::decide_sl(&p.database, &p.tgds).unwrap();
    assert!(!verdict, "semi-oblivious chase is infinite here");
    assert!(restricted(&p.database, &p.tgds, 2_000).terminated());
}

/// Oblivious ⊒ semi-oblivious: whenever the *oblivious* chase terminates,
/// so does the semi-oblivious one, and the semi-oblivious result is no
/// larger.
#[test]
fn oblivious_termination_implies_semi_oblivious() {
    for seed in 0..60u64 {
        let p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear,
            seed,
            ..Default::default()
        });
        let ob = chase(
            &p.database,
            &p.tgds,
            &ChaseConfig {
                variant: ChaseVariant::Oblivious,
                budget: ChaseBudget::atoms(30_000),
                ..Default::default()
            },
        );
        if !ob.terminated() {
            continue;
        }
        let so = semi_oblivious_chase(&p.database, &p.tgds, 30_000);
        assert!(so.terminated(), "seed {seed}");
        assert!(so.instance.len() <= ob.instance.len(), "seed {seed}");
    }
}
