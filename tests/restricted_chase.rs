//! Exploratory tests for the paper's stated future work (§9): the
//! *restricted* (standard) chase. The paper's results are for the
//! semi-oblivious variant; these tests pin down the divergences between
//! the two that make the restricted analysis "even more challenging".

use nuchase_engine::{chase, semi_oblivious_chase, ChaseBudget, ChaseConfig, ChaseVariant};
use nuchase_gen::{random_program, RandomConfig};
use nuchase_model::{parse_program, TgdClass};

fn restricted(
    db: &nuchase_model::Instance,
    tgds: &nuchase_model::TgdSet,
    budget: usize,
) -> nuchase_engine::ChaseResult {
    chase(
        db,
        tgds,
        &ChaseConfig {
            variant: ChaseVariant::Restricted,
            budget: ChaseBudget::atoms(budget),
            ..Default::default()
        },
    )
}

/// The classic separation: Σ = {R(x,y) → ∃z R(y,z)} diverges
/// semi-obliviously on {R(a,b)}, and the restricted chase diverges too
/// (no head is ever satisfied early) — but add a "sink" fact R(b,b) and
/// the restricted chase terminates immediately while the semi-oblivious
/// one still diverges.
#[test]
fn restricted_terminates_where_semi_oblivious_diverges() {
    let p = parse_program("r(a, b).\nr(b, b).\nr(X, Y) -> r(Y, Z).").unwrap();
    let so = semi_oblivious_chase(&p.database, &p.tgds, 2_000);
    assert!(!so.terminated(), "semi-oblivious fires per frontier value");
    let re = restricted(&p.database, &p.tgds, 2_000);
    assert!(
        re.terminated(),
        "restricted sees R(b,b) satisfies every head"
    );
    assert_eq!(re.instance.len(), 2);
}

/// Whenever the semi-oblivious chase terminates, the restricted chase
/// terminates as well (its instance embeds; Grahne–Onet). Empirically on
/// the random suite.
#[test]
fn semi_oblivious_termination_implies_restricted_termination() {
    for class in [TgdClass::SimpleLinear, TgdClass::Linear, TgdClass::Guarded] {
        for seed in 0..60u64 {
            let p = random_program(&RandomConfig {
                class,
                seed,
                ..Default::default()
            });
            let so = semi_oblivious_chase(&p.database, &p.tgds, 30_000);
            if !so.terminated() {
                continue;
            }
            let re = restricted(&p.database, &p.tgds, 60_000);
            assert!(re.terminated(), "class {class:?} seed {seed}");
            assert!(
                re.instance.len() <= so.instance.len(),
                "class {class:?} seed {seed}"
            );
        }
    }
}

/// The restricted chase also satisfies Σ on termination.
#[test]
fn restricted_result_is_a_model() {
    for seed in 0..40u64 {
        let p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear,
            seed,
            ..Default::default()
        });
        let re = restricted(&p.database, &p.tgds, 30_000);
        if re.terminated() {
            assert!(re.is_model_of(&p.tgds), "seed {seed}");
        }
    }
}

/// Non-uniform restricted termination is NOT characterized by the
/// semi-oblivious criteria: pin a witness where the SL decider (sound for
/// the semi-oblivious chase) says "infinite" while the restricted chase
/// is finite. This is exactly why the paper calls the restricted analysis
/// more challenging.
#[test]
fn semi_oblivious_deciders_are_conservative_for_restricted() {
    let p = parse_program("r(a, b).\nr(b, b).\nr(X, Y) -> r(Y, Z).").unwrap();
    let verdict = nuchase::decide_sl(&p.database, &p.tgds).unwrap();
    assert!(!verdict, "semi-oblivious chase is infinite here");
    assert!(restricted(&p.database, &p.tgds, 2_000).terminated());
}

/// Oblivious ⊒ semi-oblivious: whenever the *oblivious* chase terminates,
/// so does the semi-oblivious one, and the semi-oblivious result is no
/// larger.
#[test]
fn oblivious_termination_implies_semi_oblivious() {
    for seed in 0..60u64 {
        let p = random_program(&RandomConfig {
            class: TgdClass::SimpleLinear,
            seed,
            ..Default::default()
        });
        let ob = chase(
            &p.database,
            &p.tgds,
            &ChaseConfig {
                variant: ChaseVariant::Oblivious,
                budget: ChaseBudget::atoms(30_000),
                ..Default::default()
            },
        );
        if !ob.terminated() {
            continue;
        }
        let so = semi_oblivious_chase(&p.database, &p.tgds, 30_000);
        assert!(so.terminated(), "seed {seed}");
        assert!(so.instance.len() <= ob.instance.len(), "seed {seed}");
    }
}

/// The two-stage apply pipeline's activeness race: stage 1 (resolve)
/// checks restricted activeness against the *round-start snapshot*, so a
/// trigger whose head only becomes satisfied by an **earlier commit of
/// the same round** passes stage 1 — and must be dropped by the
/// commit-time re-check, identically at every thread count.
///
/// Here both `r(a,b)` and `q(a,c)` want an `s(a,·)` atom in round one.
/// The snapshot has none, so both resolve as active; the canonical-order
/// commit fires the `r`-rule first, and the `q`-rule's re-check must
/// then see `s(a,⊥0)` and drop the trigger — firing it would be a
/// restricted-chase soundness bug *and* a byte-identity break (an extra
/// null and atom).
#[test]
fn same_round_commit_satisfies_later_trigger_at_any_thread_count() {
    let p = parse_program("r(a, b).\nq(a, c).\nr(X, Y) -> s(X, Z).\nq(X, Y) -> s(X, W).").unwrap();
    let mut results = Vec::new();
    for threads in [0usize, 1, 2, 7] {
        let re = chase(
            &p.database,
            &p.tgds,
            &ChaseConfig {
                variant: ChaseVariant::Restricted,
                budget: ChaseBudget::atoms(1_000),
                threads,
                record_provenance: true,
                ..Default::default()
            },
        );
        assert!(re.terminated(), "{threads} threads");
        // Exactly one s-atom: the q-trigger was dropped at commit.
        assert_eq!(re.instance.len(), 3, "{threads} threads");
        assert_eq!(re.stats.nulls_created, 1, "{threads} threads");
        assert_eq!(re.stats.triggers_fired, 1, "{threads} threads");
        assert_eq!(re.stats.triggers_considered, 2, "{threads} threads");
        results.push(re);
    }
    // Byte-identity across the sweep: same atoms at the same indexes,
    // same provenance.
    let reference = &results[0];
    for (i, re) in results.iter().enumerate().skip(1) {
        assert!(
            reference.instance.indexed_eq(&re.instance),
            "thread sweep entry {i}"
        );
        for idx in 0..reference.instance.len() as u32 {
            assert_eq!(
                reference.provenance.as_ref().unwrap().derivation(idx),
                re.provenance.as_ref().unwrap().derivation(idx),
                "thread sweep entry {i}, atom {idx}"
            );
        }
    }
}

/// A restricted chase that **straddles the fused-path threshold**: the
/// first round enumerates more triggers than `FUSED_TRIGGER_MAX` (under
/// `Auto` it takes the staged pipeline), with half the heads already
/// satisfied so activeness drops land on both sides of the boundary;
/// the `t`-chain then runs ~hundreds of 1-trigger micro-rounds (under
/// `Auto`, the fused path). Forcing either path — at threads 0/1/2 —
/// must reproduce the run byte for byte: same atoms at the same indexes,
/// same dense fresh-null numbering, same drop decisions.
#[test]
fn restricted_activeness_straddles_the_fused_threshold() {
    use nuchase_engine::phase::FUSED_TRIGGER_MAX;
    use nuchase_engine::ApplyPath;
    let wide = 2 * FUSED_TRIGGER_MAX;
    let mut text = String::new();
    for i in 0..wide {
        text.push_str(&format!("r(a{i}, b{i}).\n"));
        if i % 2 == 0 {
            // Pre-satisfy every even trigger's head s(a_i, ·).
            text.push_str(&format!("s(a{i}, x{i}).\n"));
        }
    }
    text.push_str("t(c0, c1).\n");
    text.push_str("r(X, Y) -> s(X, Z).\n");
    text.push_str("t(X, Y) -> t(Y, Z).\n");
    let p = parse_program(&text).unwrap();
    let mut results = Vec::new();
    for threads in [0usize, 1, 2] {
        for apply_path in [ApplyPath::Auto, ApplyPath::Pipeline, ApplyPath::Fused] {
            let re = chase(
                &p.database,
                &p.tgds,
                &ChaseConfig {
                    variant: ChaseVariant::Restricted,
                    budget: ChaseBudget::atoms(p.database.len() + wide / 2 + 300),
                    threads,
                    apply_path,
                    record_provenance: true,
                    ..Default::default()
                },
            );
            // The t-chain diverges; the run ends on the atom budget.
            assert!(!re.terminated(), "{threads} threads {apply_path:?}");
            results.push((threads, apply_path, re));
        }
    }
    let (_, _, reference) = &results[0];
    // Odd r-triggers fire (wide/2), even ones drop; the rest of the
    // budget is the t-chain, one firing and one null per round.
    assert!(reference.stats.triggers_fired > wide / 2);
    assert!(reference.stats.rounds > 100, "chain tail ran micro-rounds");
    for (threads, apply_path, re) in &results[1..] {
        let label = format!("{threads} threads {apply_path:?}");
        assert!(
            reference.instance.indexed_eq(&re.instance),
            "{label}: instance"
        );
        assert_eq!(reference.stats.rounds, re.stats.rounds, "{label}: rounds");
        assert_eq!(
            reference.stats.triggers_fired, re.stats.triggers_fired,
            "{label}: fired"
        );
        assert_eq!(
            reference.stats.nulls_created, re.stats.nulls_created,
            "{label}: nulls"
        );
        for idx in 0..reference.instance.len() as u32 {
            assert_eq!(
                reference.provenance.as_ref().unwrap().derivation(idx),
                re.provenance.as_ref().unwrap().derivation(idx),
                "{label}: provenance {idx}"
            );
        }
    }
}

/// The dual direction of the race: a head satisfied *at the snapshot*
/// is dropped definitively in stage 1 (instances only grow), and the
/// dropped trigger's provisional null must not shift the ids of later
/// firings — the surviving triggers' nulls renumber densely from 0.
#[test]
fn snapshot_satisfied_triggers_drop_without_consuming_null_ids() {
    let p = parse_program("s(a, x).\nr(a, b).\nr(c, d).\nr(X, Y) -> s(X, Z).\nr(X, Y) -> t(X, W).")
        .unwrap();
    for threads in [0usize, 1, 2, 7] {
        let re = chase(
            &p.database,
            &p.tgds,
            &ChaseConfig {
                variant: ChaseVariant::Restricted,
                budget: ChaseBudget::atoms(1_000),
                threads,
                ..Default::default()
            },
        );
        assert!(re.terminated(), "{threads} threads");
        // r(a,·) head s(a,Z) is satisfied by s(a,x) at the snapshot; the
        // other three triggers fire, with nulls 0..3 densely assigned.
        assert_eq!(re.stats.triggers_fired, 3, "{threads} threads");
        assert_eq!(re.stats.nulls_created, 3, "{threads} threads");
        assert_eq!(re.instance.len(), 6, "{threads} threads");
        use nuchase_model::Term;
        let nulls: Vec<Term> = re
            .instance
            .iter()
            .flat_map(|a| a.args.iter().copied())
            .filter(|t| t.is_null())
            .collect();
        assert_eq!(nulls.len(), 3, "{threads} threads");
        for (k, t) in nulls.iter().enumerate() {
            assert_eq!(
                *t,
                Term::Null(nuchase_model::NullId(k as u32)),
                "{threads} threads: dense fresh-null numbering"
            );
        }
    }
}
