//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible bench runner: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], and
//! [`BenchmarkId`]. Each benchmark is warmed up once, then timed for a
//! bounded number of iterations (capped by wall-clock so deep chases stay
//! affordable); mean / min / max wall times are printed in a
//! `criterion`-like format. No statistics engine, no HTML reports —
//! enough to track regressions from a terminal, which is all the
//! `benches/` suite needs. Swap for the real crate when networked.

use std::fmt;
use std::time::{Duration, Instant};

/// Hint to the optimizer not to fold a value away (stable-Rust variant).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.param.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed).
        black_box(f());
        let budget = Duration::from_millis(1500);
        let started = Instant::now();
        for _ in 0..self.target {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if started.elapsed() > budget {
                break; // keep expensive benches affordable
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<48} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations (still wall-capped).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b.samples);
        self
    }

    /// Ends the group (report-flush in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// The top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target: 10,
        };
        f(&mut b);
        report(&name.to_string(), &b.samples);
        self
    }

    /// Prints the closing line (`criterion` compatibility hook).
    pub fn final_summary(&mut self) {
        println!("(criterion stub: wall-clock timings only)");
    }
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        g.finish();
    }

    #[test]
    fn id_formats_with_parameter() {
        assert_eq!(BenchmarkId::new("chase", 128).to_string(), "chase/128");
    }
}
