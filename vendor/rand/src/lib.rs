//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *small* slice of the `rand` 0.8 API it actually uses: a seeded
//! [`rngs::StdRng`] plus [`Rng::gen_range`] / [`Rng::gen_bool`] and
//! [`SeedableRng::seed_from_u64`]. The generator is xoshiro256** seeded
//! through SplitMix64 — statistically solid for test-case generation and
//! deterministic per seed, which is all the workspace needs. The stream
//! differs from upstream `rand`'s `StdRng`, so seeds are not portable to
//! the real crate (irrelevant here: seeds only name in-repo fixtures).

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — the workspace's deterministic
    /// test-case generator (API-compatible stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let a_run: Vec<usize> = (0..32).map(|_| a.gen_range(0..1_000_000)).collect();
        let c_run: Vec<usize> = (0..32).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(a_run, c_run);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=4u32);
            assert!((1..=4).contains(&y));
        }
        // All values of a small range are hit.
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
